#include "ripple/data/transfer_engine.hpp"

#include <algorithm>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::data {

TransferEngine::TransferEngine(sim::EventLoop& loop, common::Rng rng)
    : loop_(loop), rng_(rng) {}

TransferEngine::LinkKey TransferEngine::key_for(const std::string& zone_a,
                                                const std::string& zone_b) {
  const auto ordered = std::minmax(zone_a, zone_b);
  return {ordered.first, ordered.second};
}

void TransferEngine::set_bandwidth(const std::string& zone_a,
                                   const std::string& zone_b,
                                   double bytes_per_s) {
  ensure(bytes_per_s > 0.0, Errc::invalid_argument,
         "bandwidth must be positive");
  bandwidth_override_[key_for(zone_a, zone_b)] = bytes_per_s;
}

void TransferEngine::set_default_bandwidth(double bytes_per_s) {
  ensure(bytes_per_s > 0.0, Errc::invalid_argument,
         "bandwidth must be positive");
  default_bandwidth_ = bytes_per_s;
}

void TransferEngine::set_link_concurrency(const std::string& zone_a,
                                          const std::string& zone_b,
                                          std::size_t cap) {
  ensure(cap >= 1, Errc::invalid_argument, "concurrency cap must be >= 1");
  concurrency_[key_for(zone_a, zone_b)] = cap;
}

void TransferEngine::set_default_concurrency(std::size_t cap) {
  ensure(cap >= 1, Errc::invalid_argument, "concurrency cap must be >= 1");
  default_concurrency_ = cap;
}

void TransferEngine::set_failure(double probability, int max_retries) {
  ensure(probability >= 0.0 && probability < 1.0, Errc::invalid_argument,
         "failure probability must be in [0, 1)");
  ensure(max_retries >= 0, Errc::invalid_argument,
         "max_retries must be >= 0");
  failure_probability_ = probability;
  max_retries_ = max_retries;
}

void TransferEngine::set_tenant_weight(const std::string& tenant,
                                       double weight) {
  ensure(!tenant.empty(), Errc::invalid_argument,
         "bandwidth weight needs a tenant");
  ensure(weight > 0.0, Errc::invalid_argument,
         "bandwidth weight must be > 0");
  tenant_weights_[tenant] = weight;
}

void TransferEngine::set_tenant_link_quota(const std::string& tenant,
                                           double bytes) {
  ensure(!tenant.empty(), Errc::invalid_argument,
         "link quota needs a tenant");
  ensure(bytes > 0.0, Errc::invalid_argument,
         "link quota must be > 0 bytes");
  link_quota_[tenant] = bytes;
}

double TransferEngine::weight_for(const std::string& tenant) const {
  const auto it = tenant_weights_.find(tenant);
  return it == tenant_weights_.end() ? 1.0 : it->second;
}

double TransferEngine::bandwidth_between(const std::string& zone_a,
                                         const std::string& zone_b) const {
  const auto it = bandwidth_override_.find(key_for(zone_a, zone_b));
  if (it != bandwidth_override_.end()) return it->second;
  if (network_ != nullptr) {
    const double bw = network_->link_bandwidth(zone_a, zone_b);
    if (bw > 0.0) return bw;
  }
  return default_bandwidth_;
}

double TransferEngine::newcomer_rate(const std::string& src_zone,
                                     const std::string& dst_zone) const {
  const double load = static_cast<double>(active_on(src_zone, dst_zone)) +
                      static_cast<double>(queued_on(src_zone, dst_zone)) +
                      1.0;
  return bandwidth_between(src_zone, dst_zone) / load;
}

std::size_t TransferEngine::cap_for(const LinkKey& key) const {
  const auto it = concurrency_.find(key);
  return it == concurrency_.end() ? default_concurrency_ : it->second;
}

std::size_t TransferEngine::active_on(const std::string& zone_a,
                                      const std::string& zone_b) const {
  const auto it = links_.find(key_for(zone_a, zone_b));
  return it == links_.end() ? 0 : it->second.active.size();
}

std::size_t TransferEngine::queued_on(const std::string& zone_a,
                                      const std::string& zone_b) const {
  const auto it = links_.find(key_for(zone_a, zone_b));
  return it == links_.end() ? 0 : it->second.queued.size();
}

TransferEngine::TransferId TransferEngine::transfer(
    const std::string& dataset, const std::string& src_zone,
    const std::string& dst_zone, double bytes, Callback on_done,
    const std::string& tenant) {
  ensure(static_cast<bool>(on_done), Errc::invalid_argument,
         "transfer: empty callback");
  ensure(bytes >= 0.0, Errc::invalid_argument,
         "transfer: bytes must be >= 0");
  ensure(src_zone != dst_zone, Errc::invalid_argument,
         "transfer: src and dst zones are the same");

  const TransferId id = next_id_++;
  Transfer t;
  t.id = id;
  t.dataset = dataset;
  t.src = src_zone;
  t.dst = dst_zone;
  t.total_bytes = bytes;
  t.remaining = bytes;
  t.started_at = loop_.now();
  t.tenant = tenant;
  t.on_done = std::move(on_done);
  if (tracer_ != nullptr && tracer_->enabled()) {
    t.trace = tracer_->begin("transfer", "xfer", dataset, loop_.now(), 0,
                             {{"src", src_zone}, {"dst", dst_zone}});
    if (!tenant.empty()) tracer_->arg(t.trace, "tenant", tenant);
  }
  if (counters_ != nullptr) {
    counters_->add("data.transfers");
    if (!tenant.empty()) {
      counters_->add(strutil::cat("data.transfers.", tenant));
    }
  }
  transfers_.emplace(id, std::move(t));
  ++started_;
  enter_link(id);
  return id;
}

void TransferEngine::enter_link(TransferId id) {
  Transfer& t = transfers_.at(id);
  const LinkKey key = key_for(t.src, t.dst);
  Link& link = links_[key];
  if (link.active.size() < cap_for(key) && !over_quota(key, t)) {
    admit(t);
  } else {
    link.queued.push_back(id);
  }
}

bool TransferEngine::over_quota(const LinkKey& key,
                                const Transfer& t) const {
  if (t.tenant.empty()) return false;
  const auto quota = link_quota_.find(t.tenant);
  if (quota == link_quota_.end()) return false;
  const auto link_it = links_.find(key);
  if (link_it == links_.end()) return false;
  double in_flight = 0.0;
  std::size_t own = 0;
  for (const TransferId active_id : link_it->second.active) {
    const Transfer& other = transfers_.at(active_id);
    if (other.tenant != t.tenant) continue;
    ++own;
    in_flight += other.total_bytes;
  }
  // Starvation guard: a tenant with nothing in flight on the link may
  // always start one transfer, however large — the quota throttles
  // concurrency, it cannot wedge a tenant whose datasets exceed it.
  if (own == 0) return false;
  return in_flight + t.total_bytes > quota->second;
}

void TransferEngine::drain_queue(const LinkKey& key, Link& link) {
  // A failed link keeps its queue parked: restore_link drains it.
  if (down_.count(key) != 0) return;
  // Skip-scan: quota-parked entries stay queued (in order) while later
  // entries of other tenants are admitted past them. deque::erase
  // returns the successor, so the scan survives its own admissions.
  auto it = link.queued.begin();
  while (it != link.queued.end() && link.active.size() < cap_for(key)) {
    Transfer& t = transfers_.at(*it);
    if (over_quota(key, t)) {
      ++it;
      continue;
    }
    it = link.queued.erase(it);
    admit(t);
  }
}

TransferEngine::TransferId TransferEngine::transfer_striped(
    const std::string& dataset, std::vector<std::string> src_zones,
    const std::string& dst_zone, double bytes, Callback on_done,
    const std::string& tenant) {
  ensure(static_cast<bool>(on_done), Errc::invalid_argument,
         "transfer_striped: empty callback");
  ensure(bytes >= 0.0, Errc::invalid_argument,
         "transfer_striped: bytes must be >= 0");
  // Distinct sources in sorted order: one stripe per (src, dst) link,
  // admitted deterministically.
  std::sort(src_zones.begin(), src_zones.end());
  src_zones.erase(std::unique(src_zones.begin(), src_zones.end()),
                  src_zones.end());
  src_zones.erase(
      std::remove(src_zones.begin(), src_zones.end(), dst_zone),
      src_zones.end());
  ensure(!src_zones.empty(), Errc::invalid_argument,
         "transfer_striped: no usable source zone");
  if (src_zones.size() == 1) {
    return transfer(dataset, src_zones.front(), dst_zone, bytes,
                    std::move(on_done), tenant);
  }

  // Weight each stripe by the rate its link can actually give a
  // newcomer *right now* (newcomer_rate), so a congested replica
  // carries proportionally fewer bytes and the parent is not gated on
  // its slowest link. Deterministic: link state is a pure function of
  // the event schedule at this instant.
  double rate_sum = 0.0;
  for (const auto& src : src_zones) {
    rate_sum += newcomer_rate(src, dst_zone);
  }

  const TransferId parent_id = next_id_++;
  StripedTransfer parent;
  parent.id = parent_id;
  parent.dataset = dataset;
  parent.total_bytes = bytes;
  parent.started_at = loop_.now();
  parent.tenant = tenant;
  parent.on_done = std::move(on_done);
  if (tracer_ != nullptr && tracer_->enabled()) {
    parent.trace = tracer_->begin("transfer-striped", "xfer", dataset,
                                  loop_.now(), 0, {{"dst", dst_zone}});
    if (!tenant.empty()) tracer_->arg(parent.trace, "tenant", tenant);
  }
  if (counters_ != nullptr) {
    counters_->add("data.transfers");
    if (!tenant.empty()) {
      counters_->add(strutil::cat("data.transfers.", tenant));
    }
  }
  ++started_;

  // Bandwidth-proportional split; the last stripe takes the remainder
  // so the shares always sum to exactly `bytes`.
  double assigned = 0.0;
  for (std::size_t i = 0; i < src_zones.size(); ++i) {
    const std::string& src = src_zones[i];
    const double share =
        i + 1 == src_zones.size()
            ? bytes - assigned
            : bytes * (newcomer_rate(src, dst_zone) / rate_sum);
    assigned += share;

    const TransferId stripe_id = next_id_++;
    Transfer stripe;
    stripe.id = stripe_id;
    stripe.dataset = dataset;
    stripe.src = src;
    stripe.dst = dst_zone;
    stripe.total_bytes = share;
    stripe.remaining = share;
    stripe.started_at = parent.started_at;
    stripe.parent = parent_id;
    stripe.tenant = tenant;
    if (tracer_ != nullptr && tracer_->enabled()) {
      stripe.trace = tracer_->begin("stripe", "xfer", dataset, loop_.now(),
                                    parent.trace, {{"src", src}});
    }
    transfers_.emplace(stripe_id, std::move(stripe));
    parent.stripes.push_back(stripe_id);
    ++stripes_started_;
  }
  auto [it, inserted] = striped_.emplace(parent_id, std::move(parent));
  // Admission after the parent is registered: a zero-byte stripe could
  // otherwise complete before its siblings exist.
  for (const TransferId stripe_id : it->second.stripes) {
    enter_link(stripe_id);
  }
  return parent_id;
}

void TransferEngine::admit(Transfer& transfer) {
  const LinkKey key = key_for(transfer.src, transfer.dst);
  Link& link = links_[key];
  link.active.push_back(transfer.id);
  transfer.phase = Phase::setup;
  ++transfer.attempts;
  // Per-attempt draws, in admission order: deterministic given the
  // event schedule.
  transfer.attempt_fails = rng_.chance(failure_probability_);
  // An attempt admitted onto a failed link dies after its setup
  // latency (the handshake times out); on_attempt_end treats it as
  // terminal while the link stays down.
  if (down_.count(key) != 0) transfer.attempt_fails = true;
  const sim::Duration setup = setup_.sample(rng_);
  const TransferId id = transfer.id;
  transfer.timer = loop_.call_after(setup, [this, id] { begin_flow(id); });
}

void TransferEngine::begin_flow(TransferId id) {
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  it->second.phase = Phase::flowing;
  it->second.timer = {};
  it->second.last_update = loop_.now();
  replan(key_for(it->second.src, it->second.dst));
}

void TransferEngine::plan_link(const LinkKey& key, Link& link,
                               std::vector<PlannedTimer>& sink) {
  const sim::SimTime now = loop_.now();

  std::size_t flowing = 0;
  for (const TransferId id : link.active) {
    Transfer& t = transfers_.at(id);
    if (t.phase != Phase::flowing) continue;
    ++flowing;
    t.remaining -= t.rate * (now - t.last_update);
    if (t.remaining < 0.0) t.remaining = 0.0;
    t.last_update = now;
  }
  if (flowing == 0) return;

  const double bandwidth = bandwidth_between(key.first, key.second);
  if (tenant_weights_.empty()) {
    // The historical equal split, kept as its own arithmetic path: the
    // weighted formula below reduces to it mathematically, but only
    // this exact expression is *bit*-identical to the pre-tenant
    // engine.
    const double share = bandwidth / static_cast<double>(flowing);
    for (const TransferId id : link.active) {
      Transfer& t = transfers_.at(id);
      if (t.phase != Phase::flowing) continue;
      t.rate = share;
      const sim::Duration eta = t.remaining / share;
      sink.push_back(PlannedTimer{common::MergeKey{now + eta, t.id, 0}, t.id,
                                  eta});
    }
    return;
  }
  // Weighted split: the link divides across the tenants flowing on it
  // in weight proportion, then equally within each tenant. A single
  // flowing tenant gets weight/weight == 1.0 exactly, i.e. the equal
  // split. tenant_weights_ is read-only during replan_all's sharded
  // passes (setters run on the loop thread between passes).
  std::map<std::string, std::size_t> flows_by_tenant;
  for (const TransferId id : link.active) {
    const Transfer& t = transfers_.at(id);
    if (t.phase != Phase::flowing) continue;
    ++flows_by_tenant[t.tenant];
  }
  double weight_sum = 0.0;
  for (const auto& [tenant, count] : flows_by_tenant) {
    weight_sum += weight_for(tenant);
  }
  for (const TransferId id : link.active) {
    Transfer& t = transfers_.at(id);
    if (t.phase != Phase::flowing) continue;
    const double share =
        bandwidth * (weight_for(t.tenant) / weight_sum) /
        static_cast<double>(flows_by_tenant.at(t.tenant));
    t.rate = share;
    const sim::Duration eta = t.remaining / share;
    sink.push_back(PlannedTimer{common::MergeKey{now + eta, t.id, 0}, t.id,
                                eta});
  }
}

void TransferEngine::replan(const LinkKey& key) {
  const auto link_it = links_.find(key);
  if (link_it == links_.end()) return;
  // Commit in the link's admission order — cancel() consumes no event
  // sequence, so the call_after sequence here is byte-identical to the
  // pre-plan_link implementation.
  std::vector<PlannedTimer> planned;
  plan_link(key, link_it->second, planned);
  for (const PlannedTimer& plan : planned) {
    Transfer& t = transfers_.at(plan.id);
    if (t.timer.valid()) loop_.cancel(t.timer);
    t.timer = loop_.call_after(plan.eta,
                               [this, id = plan.id] { on_attempt_end(id); });
  }
}

std::size_t TransferEngine::replan_all() {
  // Snapshot links in map-key order; shard s plans links s, s+n, … —
  // disjoint link (and therefore transfer) sets, no event-loop calls.
  std::vector<std::pair<const LinkKey*, Link*>> links;
  links.reserve(links_.size());
  for (auto& [key, link] : links_) links.emplace_back(&key, &link);
  if (links.empty()) return 0;
  const std::size_t nshards =
      (executor_ != nullptr && executor_->shards() > 1)
          ? std::min<std::size_t>(executor_->shards(), links.size())
          : 1;
  const bool traced = tracer_ != nullptr && tracer_->enabled();
  const sim::SimTime now = loop_.now();
  if (traced) tracer_->begin_lanes(nshards);
  std::vector<std::vector<PlannedTimer>> buffers(nshards);
  const auto pass = [&](std::size_t shard) {
    std::vector<PlannedTimer>& sink = buffers[shard];
    for (std::size_t i = shard; i < links.size(); i += nshards) {
      const std::size_t before = sink.size();
      plan_link(*links[i].first, *links[i].second, sink);
      if (traced) {
        // One zero-length span per planned link. The merge key orders
        // lane records by link index (globally unique), so the span log
        // is shard-count invariant — the span itself never names the
        // shard.
        tracer_->lane_complete(
            shard,
            common::MergeKey{now, static_cast<std::uint64_t>(i),
                             static_cast<std::uint32_t>(shard)},
            "replan", "xfer",
            strutil::cat(links[i].first->first, "~", links[i].first->second),
            now, now,
            {{"flows", std::to_string(sink.size() - before)}});
      }
    }
    for (PlannedTimer& plan : sink) {
      plan.key.shard = static_cast<std::uint32_t>(shard);
    }
  };
  if (nshards == 1) {
    pass(0);
  } else {
    executor_->run(nshards, pass);
  }
  // Merge in (completion time, transfer id, shard) order and commit the
  // timer reschedules serially. Ids are globally unique, so the timer
  // sequence — and with it every downstream completion event — is a
  // pure function of the plan, independent of shard count.
  std::vector<PlannedTimer> merged = common::merge_shards(
      std::move(buffers), [](const PlannedTimer& plan) { return plan.key; });
  if (traced) tracer_->commit_lanes();
  for (const PlannedTimer& plan : merged) {
    Transfer& t = transfers_.at(plan.id);
    if (t.timer.valid()) loop_.cancel(t.timer);
    t.timer = loop_.call_after(plan.eta,
                               [this, id = plan.id] { on_attempt_end(id); });
  }
  return merged.size();
}

std::uint64_t TransferEngine::completion_hash() const noexcept {
  std::uint64_t hash = common::kFnvOffsetBasis;
  for (const std::string& dataset : completion_log_) {
    hash = common::fnv1a(hash, dataset);
  }
  return hash;
}

void TransferEngine::leave_link(Transfer& transfer) {
  const LinkKey key = key_for(transfer.src, transfer.dst);
  Link& link = links_[key];
  link.active.erase(
      std::remove(link.active.begin(), link.active.end(), transfer.id),
      link.active.end());
  if (transfer.timer.valid()) {
    loop_.cancel(transfer.timer);
    transfer.timer = {};
  }
  transfer.phase = Phase::queued;
  transfer.rate = 0.0;
  // A freed slot admits queued work before the survivors re-plan, so
  // the link never idles below its cap while admissible work waits.
  drain_queue(key, link);
  replan(key);
}

void TransferEngine::fail_link(const std::string& zone_a,
                               const std::string& zone_b) {
  const LinkKey key = key_for(zone_a, zone_b);
  if (!down_.insert(key).second) return;  // already down
  const auto it = links_.find(key);
  if (it == links_.end()) return;
  // Snapshot ids: failing an attempt mutates active/queued, and a
  // victim's callback may re-enter the engine (cancel, new transfers).
  std::vector<TransferId> victims(it->second.active.begin(),
                                  it->second.active.end());
  victims.insert(victims.end(), it->second.queued.begin(),
                 it->second.queued.end());
  for (const TransferId victim : victims) fail_attempt_terminal(victim);
}

void TransferEngine::restore_link(const std::string& zone_a,
                                  const std::string& zone_b) {
  const LinkKey key = key_for(zone_a, zone_b);
  if (down_.erase(key) == 0) return;  // was not down
  const auto it = links_.find(key);
  if (it == links_.end()) return;
  Link& link = it->second;
  // Drain whatever queued while the link was down.
  drain_queue(key, link);
  replan(key);
}

void TransferEngine::fail_attempt_terminal(TransferId id) {
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return;  // settled by a reentrant callback
  Transfer& t = it->second;
  Link& link = links_[key_for(t.src, t.dst)];
  const auto queued = std::find(link.queued.begin(), link.queued.end(), id);
  if (queued != link.queued.end()) {
    link.queued.erase(queued);
  } else {
    leave_link(t);
  }
  if (t.parent != 0) {
    finish_stripe(id, false);  // dies into the parent's failover path
    return;
  }
  ++failed_;
  if (counters_ != nullptr) counters_->add("data.failed");
  close_span(t.trace, "failed");
  Callback on_done = std::move(t.on_done);
  const sim::Duration elapsed = loop_.now() - t.started_at;
  transfers_.erase(it);
  on_done(false, elapsed);
}

void TransferEngine::on_attempt_end(TransferId id) {
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  Transfer& t = it->second;
  t.remaining = 0.0;
  t.timer = {};

  if (t.attempt_fails) {
    // Retrying a dead link is pointless: while it is down, every
    // failure is terminal regardless of the budget.
    const bool terminal = down_.count(key_for(t.src, t.dst)) != 0;
    leave_link(t);
    if (!terminal && t.attempts <= max_retries_) {
      ++retries_;
      if (counters_ != nullptr) counters_->add("data.retries");
      t.remaining = t.total_bytes;
      enter_link(id);
      return;
    }
    if (t.parent != 0) {
      finish_stripe(id, false);
      return;
    }
    ++failed_;
    if (counters_ != nullptr) counters_->add("data.failed");
    close_span(t.trace, "failed");
    Callback on_done = std::move(t.on_done);
    const sim::Duration elapsed = loop_.now() - t.started_at;
    transfers_.erase(it);
    on_done(false, elapsed);
    return;
  }

  leave_link(t);
  if (t.parent != 0) {
    // Stripe bytes are credited when the parent commits, so a striped
    // transfer that ultimately fails reports 0 — same as a failed
    // plain transfer.
    finish_stripe(id, true);
    return;
  }
  bytes_moved_ += t.total_bytes;
  ++completed_;
  if (counters_ != nullptr) counters_->add("data.completed");
  close_span(t.trace, "ok");
  const sim::Duration elapsed = loop_.now() - t.started_at;
  transfer_times_.add(elapsed);
  completion_log_.push_back(t.dataset);
  Callback on_done = std::move(t.on_done);
  transfers_.erase(it);
  on_done(true, elapsed);
}

void TransferEngine::finish_stripe(TransferId id, bool ok) {
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return;  // already settled: idempotent
  const TransferId parent_id = it->second.parent;
  const double stripe_bytes = it->second.total_bytes;
  close_span(it->second.trace, ok ? "ok" : "failed");
  transfers_.erase(it);
  const auto pit = striped_.find(parent_id);
  if (pit == striped_.end()) return;  // orphan: parent already settled
  StripedTransfer& parent = pit->second;
  parent.stripes.erase(
      std::remove(parent.stripes.begin(), parent.stripes.end(), id),
      parent.stripes.end());
  const sim::Duration elapsed = loop_.now() - parent.started_at;
  if (!ok) {
    if (!parent.stripes.empty()) {
      // Failover: a dead stripe's share moves to the first surviving
      // stripe (creation order — deterministic) instead of failing the
      // transfer, so extra replicas add reliability, never risk. The
      // heir's current attempt simply carries more bytes; its own
      // retry budget still applies.
      ++stripe_failovers_;
      Transfer& heir = transfers_.at(parent.stripes.front());
      heir.total_bytes += stripe_bytes;
      heir.remaining += stripe_bytes;
      if (heir.phase == Phase::flowing) {
        replan(key_for(heir.src, heir.dst));
      }
      return;
    }
    // The last stripe ran out of retries: the whole transfer fails and
    // the partial bytes of earlier stripes are never committed.
    ++failed_;
    if (counters_ != nullptr) counters_->add("data.failed");
    close_span(parent.trace, "failed");
    Callback on_done = std::move(parent.on_done);
    striped_.erase(pit);
    on_done(false, elapsed);
    return;
  }
  if (!parent.stripes.empty()) return;  // commit when the last lands
  ++completed_;
  if (counters_ != nullptr) counters_->add("data.completed");
  close_span(parent.trace, "ok");
  bytes_moved_ += parent.total_bytes;
  transfer_times_.add(elapsed);
  completion_log_.push_back(parent.dataset);
  Callback on_done = std::move(parent.on_done);
  striped_.erase(pit);
  on_done(true, elapsed);
}

void TransferEngine::abort_stripe(TransferId id) {
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  Transfer& t = it->second;
  Link& link = links_[key_for(t.src, t.dst)];
  const auto queued = std::find(link.queued.begin(), link.queued.end(), id);
  if (queued != link.queued.end()) {
    link.queued.erase(queued);
  } else {
    leave_link(t);
  }
  close_span(t.trace, "cancelled");
  transfers_.erase(it);
}

void TransferEngine::close_span(metrics::SpanId id, const char* outcome) {
  if (tracer_ == nullptr || id == 0) return;
  tracer_->arg(id, "outcome", outcome);
  tracer_->end(id, loop_.now());
}

bool TransferEngine::cancel(TransferId id) {
  const auto striped = striped_.find(id);
  if (striped != striped_.end()) {
    const std::vector<TransferId> stripes = std::move(striped->second.stripes);
    close_span(striped->second.trace, "cancelled");
    striped_.erase(striped);
    for (const TransferId sid : stripes) abort_stripe(sid);
    ++cancelled_;
    if (counters_ != nullptr) counters_->add("data.cancelled");
    return true;
  }
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return false;
  if (it->second.parent != 0) {
    if (striped_.count(it->second.parent) != 0) {
      return cancel(it->second.parent);  // a stripe stands for the set
    }
    // Orphan stripe: its parent already settled (failed, cancelled),
    // so the set's outcome is accounted — tear the stripe down without
    // touching the counters again (the old path double-counted here).
    abort_stripe(id);
    return true;
  }
  abort_stripe(id);  // same dequeue-or-leave-link teardown
  ++cancelled_;
  if (counters_ != nullptr) counters_->add("data.cancelled");
  return true;
}

}  // namespace ripple::data
