#include "ripple/data/transfer_engine.hpp"

#include <algorithm>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::data {

TransferEngine::TransferEngine(sim::EventLoop& loop, common::Rng rng)
    : loop_(loop), rng_(rng) {}

TransferEngine::LinkKey TransferEngine::key_for(const std::string& zone_a,
                                                const std::string& zone_b) {
  const auto ordered = std::minmax(zone_a, zone_b);
  return {ordered.first, ordered.second};
}

void TransferEngine::set_bandwidth(const std::string& zone_a,
                                   const std::string& zone_b,
                                   double bytes_per_s) {
  ensure(bytes_per_s > 0.0, Errc::invalid_argument,
         "bandwidth must be positive");
  bandwidth_override_[key_for(zone_a, zone_b)] = bytes_per_s;
}

void TransferEngine::set_default_bandwidth(double bytes_per_s) {
  ensure(bytes_per_s > 0.0, Errc::invalid_argument,
         "bandwidth must be positive");
  default_bandwidth_ = bytes_per_s;
}

void TransferEngine::set_link_concurrency(const std::string& zone_a,
                                          const std::string& zone_b,
                                          std::size_t cap) {
  ensure(cap >= 1, Errc::invalid_argument, "concurrency cap must be >= 1");
  concurrency_[key_for(zone_a, zone_b)] = cap;
}

void TransferEngine::set_default_concurrency(std::size_t cap) {
  ensure(cap >= 1, Errc::invalid_argument, "concurrency cap must be >= 1");
  default_concurrency_ = cap;
}

void TransferEngine::set_failure(double probability, int max_retries) {
  ensure(probability >= 0.0 && probability < 1.0, Errc::invalid_argument,
         "failure probability must be in [0, 1)");
  ensure(max_retries >= 0, Errc::invalid_argument,
         "max_retries must be >= 0");
  failure_probability_ = probability;
  max_retries_ = max_retries;
}

double TransferEngine::bandwidth_between(const std::string& zone_a,
                                         const std::string& zone_b) const {
  const auto it = bandwidth_override_.find(key_for(zone_a, zone_b));
  if (it != bandwidth_override_.end()) return it->second;
  if (network_ != nullptr) {
    const double bw = network_->link_bandwidth(zone_a, zone_b);
    if (bw > 0.0) return bw;
  }
  return default_bandwidth_;
}

std::size_t TransferEngine::cap_for(const LinkKey& key) const {
  const auto it = concurrency_.find(key);
  return it == concurrency_.end() ? default_concurrency_ : it->second;
}

std::size_t TransferEngine::active_on(const std::string& zone_a,
                                      const std::string& zone_b) const {
  const auto it = links_.find(key_for(zone_a, zone_b));
  return it == links_.end() ? 0 : it->second.active.size();
}

std::size_t TransferEngine::queued_on(const std::string& zone_a,
                                      const std::string& zone_b) const {
  const auto it = links_.find(key_for(zone_a, zone_b));
  return it == links_.end() ? 0 : it->second.queued.size();
}

TransferEngine::TransferId TransferEngine::transfer(
    const std::string& dataset, const std::string& src_zone,
    const std::string& dst_zone, double bytes, Callback on_done) {
  ensure(static_cast<bool>(on_done), Errc::invalid_argument,
         "transfer: empty callback");
  ensure(bytes >= 0.0, Errc::invalid_argument,
         "transfer: bytes must be >= 0");
  ensure(src_zone != dst_zone, Errc::invalid_argument,
         "transfer: src and dst zones are the same");

  const TransferId id = next_id_++;
  Transfer t;
  t.id = id;
  t.dataset = dataset;
  t.src = src_zone;
  t.dst = dst_zone;
  t.total_bytes = bytes;
  t.remaining = bytes;
  t.started_at = loop_.now();
  t.on_done = std::move(on_done);
  auto [it, inserted] = transfers_.emplace(id, std::move(t));
  ++started_;

  const LinkKey key = key_for(src_zone, dst_zone);
  Link& link = links_[key];
  if (link.active.size() < cap_for(key)) {
    admit(it->second);
  } else {
    link.queued.push_back(id);
  }
  return id;
}

void TransferEngine::admit(Transfer& transfer) {
  Link& link = links_[key_for(transfer.src, transfer.dst)];
  link.active.push_back(transfer.id);
  transfer.phase = Phase::setup;
  ++transfer.attempts;
  // Per-attempt draws, in admission order: deterministic given the
  // event schedule.
  transfer.attempt_fails = rng_.chance(failure_probability_);
  const sim::Duration setup = setup_.sample(rng_);
  const TransferId id = transfer.id;
  transfer.timer = loop_.call_after(setup, [this, id] { begin_flow(id); });
}

void TransferEngine::begin_flow(TransferId id) {
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  it->second.phase = Phase::flowing;
  it->second.timer = {};
  it->second.last_update = loop_.now();
  replan(key_for(it->second.src, it->second.dst));
}

void TransferEngine::replan(const LinkKey& key) {
  const auto link_it = links_.find(key);
  if (link_it == links_.end()) return;
  Link& link = link_it->second;
  const sim::SimTime now = loop_.now();

  std::size_t flowing = 0;
  for (const TransferId id : link.active) {
    Transfer& t = transfers_.at(id);
    if (t.phase != Phase::flowing) continue;
    ++flowing;
    t.remaining -= t.rate * (now - t.last_update);
    if (t.remaining < 0.0) t.remaining = 0.0;
    t.last_update = now;
    if (t.timer.valid()) {
      loop_.cancel(t.timer);
      t.timer = {};
    }
  }
  if (flowing == 0) return;

  const double share =
      bandwidth_between(key.first, key.second) / static_cast<double>(flowing);
  for (const TransferId id : link.active) {
    Transfer& t = transfers_.at(id);
    if (t.phase != Phase::flowing) continue;
    t.rate = share;
    const sim::Duration eta = t.remaining / share;
    t.timer = loop_.call_after(eta, [this, id] { on_attempt_end(id); });
  }
}

void TransferEngine::leave_link(Transfer& transfer) {
  const LinkKey key = key_for(transfer.src, transfer.dst);
  Link& link = links_[key];
  link.active.erase(
      std::remove(link.active.begin(), link.active.end(), transfer.id),
      link.active.end());
  if (transfer.timer.valid()) {
    loop_.cancel(transfer.timer);
    transfer.timer = {};
  }
  transfer.phase = Phase::queued;
  transfer.rate = 0.0;
  // A freed slot admits the queue head before the survivors re-plan, so
  // the link never idles below its cap while work waits.
  while (!link.queued.empty() && link.active.size() < cap_for(key)) {
    const TransferId next = link.queued.front();
    link.queued.pop_front();
    admit(transfers_.at(next));
  }
  replan(key);
}

void TransferEngine::on_attempt_end(TransferId id) {
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  Transfer& t = it->second;
  t.remaining = 0.0;
  t.timer = {};

  if (t.attempt_fails) {
    leave_link(t);
    if (t.attempts <= max_retries_) {
      ++retries_;
      t.remaining = t.total_bytes;
      const LinkKey key = key_for(t.src, t.dst);
      Link& link = links_[key];
      if (link.active.size() < cap_for(key)) {
        admit(t);
      } else {
        link.queued.push_back(id);
      }
      return;
    }
    ++failed_;
    Callback on_done = std::move(t.on_done);
    const sim::Duration elapsed = loop_.now() - t.started_at;
    transfers_.erase(it);
    on_done(false, elapsed);
    return;
  }

  ++completed_;
  bytes_moved_ += t.total_bytes;
  const sim::Duration elapsed = loop_.now() - t.started_at;
  transfer_times_.add(elapsed);
  completion_log_.push_back(t.dataset);
  leave_link(t);
  Callback on_done = std::move(t.on_done);
  transfers_.erase(it);
  on_done(true, elapsed);
}

bool TransferEngine::cancel(TransferId id) {
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return false;
  Transfer& t = it->second;
  const LinkKey key = key_for(t.src, t.dst);
  Link& link = links_[key];
  const auto queued =
      std::find(link.queued.begin(), link.queued.end(), id);
  if (queued != link.queued.end()) {
    link.queued.erase(queued);
  } else {
    leave_link(t);
  }
  ++cancelled_;
  transfers_.erase(it);
  return true;
}

}  // namespace ripple::data
