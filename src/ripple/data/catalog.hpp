#pragma once

/// \file catalog.hpp
/// The replica catalog: datasets, per-zone stores with finite capacity,
/// pinning and lineage reference counts, and deterministic LRU eviction.
///
/// This is the data plane's bookkeeping half (the TransferEngine is the
/// movement half). A dataset is a named byte blob with replicas in one
/// or more zones; each zone has a Store with a capacity (infinite until
/// declared via add_store). Transfers reserve space up front, commit a
/// replica on arrival, and release the reservation on failure, so a
/// store can never overcommit. When a reservation does not fit, the
/// least-recently-used *unprotected* replicas are evicted until it does.
///
/// A replica is protected from eviction while it is pinned (explicit
/// pin()/unpin(), used by workflow stages for the datasets they are
/// actively reading) or while its dataset still has lineage consumers
/// (add_consumers()/consume_done(), driven by workflow lineage: an
/// intermediate becomes evictable only when every stage that reads it
/// has finished). Eviction order is deterministic: strictly ascending
/// last-use stamps from a logical clock, name as the tie-break.

#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace ripple::data {

struct Dataset {
  std::string name;
  double bytes = 0.0;
  std::set<std::string> zones;  ///< where committed replicas live
};

/// Aggregate view of one zone's store.
struct StoreInfo {
  double capacity = std::numeric_limits<double>::infinity();
  double used = 0.0;      ///< bytes held by committed replicas
  double reserved = 0.0;  ///< bytes promised to in-flight transfers
  std::uint64_t evictions = 0;

  [[nodiscard]] double free() const noexcept {
    return capacity - used - reserved;
  }
};

class ReplicaCatalog {
 public:
  /// Declares (or resizes) the store of `zone` to a finite capacity in
  /// bytes. Zones never declared have infinite capacity. Shrinking
  /// below the currently used+reserved bytes throws.
  void add_store(const std::string& zone, double capacity_bytes);

  /// Registers a dataset resident in `zone`; re-registering adds a
  /// replica location (bytes of the first registration win). May evict
  /// to make room; throws Errc::capacity when the store cannot fit the
  /// replica even after evicting everything unprotected.
  void register_dataset(const std::string& name, double bytes,
                        const std::string& zone);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] const Dataset& dataset(const std::string& name) const;
  [[nodiscard]] bool available_in(const std::string& name,
                                  const std::string& zone) const;

  // --- transfer admission -------------------------------------------------

  /// Reserves `bytes` in `zone` for an in-flight transfer, evicting LRU
  /// unprotected replicas as needed. Returns false (reserving nothing)
  /// when the store cannot fit the reservation.
  [[nodiscard]] bool reserve(const std::string& zone, double bytes);

  /// Returns a reservation made by reserve() (transfer failed/cancelled).
  void release_reservation(const std::string& zone, double bytes);

  /// Converts a reservation of dataset(name).bytes into a committed
  /// replica of `name` in `zone`.
  void commit_replica(const std::string& name, const std::string& zone);

  /// Marks the replica recently used (LRU bump). No-op when absent.
  void touch(const std::string& name, const std::string& zone);

  /// Drops a committed replica; returns false when absent or protected.
  bool drop_replica(const std::string& name, const std::string& zone);

  // --- pinning & lineage --------------------------------------------------

  /// Pin/unpin the replica of `name` in `zone` (pin counts nest).
  /// Pinned replicas are never evicted. Pinning requires the replica to
  /// exist; unpinning an unpinned replica throws.
  void pin(const std::string& name, const std::string& zone);
  void unpin(const std::string& name, const std::string& zone);
  [[nodiscard]] std::size_t pins(const std::string& name,
                                 const std::string& zone) const;

  /// Lineage: records `count` future consumers of `name` (the dataset
  /// may not be registered yet). While consumers remain, no replica of
  /// the dataset is evicted anywhere.
  void add_consumers(const std::string& name, std::size_t count);

  /// One consumer finished; at zero the dataset becomes evictable.
  void consume_done(const std::string& name);

  [[nodiscard]] std::size_t consumers_left(const std::string& name) const;

  // --- introspection ------------------------------------------------------

  [[nodiscard]] StoreInfo store(const std::string& zone) const;

  /// The zone's store failed: every replica in it is force-dropped —
  /// pins and lineage notwithstanding — reservations are wiped and the
  /// store itself is forgotten (a later add_store re-declares it; until
  /// then the zone is back to infinite capacity). Returns the names of
  /// datasets that lost a replica, sorted. Pins held on force-dropped
  /// replicas are remembered so the interrupted readers' later unpin()
  /// calls are tolerated no-ops; pin() on a lost replica still throws.
  std::vector<std::string> fail_store(const std::string& zone);

  /// Zones with a declared store, sorted.
  [[nodiscard]] std::vector<std::string> store_zones() const;
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return total_evictions_;
  }

  /// Every eviction in order, as "zone/dataset" — bit-identical across
  /// same-seed runs (the determinism suite diffs it).
  [[nodiscard]] const std::vector<std::string>& eviction_log()
      const noexcept {
    return eviction_log_;
  }

 private:
  struct Replica {
    std::uint64_t last_use = 0;
    std::size_t pins = 0;
  };

  struct Entry {
    Dataset info;
    std::map<std::string, Replica> replicas;  ///< zone -> state
  };

  struct Store {
    StoreInfo info;
    /// LRU index: (last_use, dataset) ascending. last_use stamps are
    /// unique per touch, dataset tie-break keeps determinism if a
    /// future refactor reuses stamps.
    std::set<std::pair<std::uint64_t, std::string>> lru;
  };

  /// True when the replica of `entry` may not be evicted.
  [[nodiscard]] bool protected_replica(const Entry& entry,
                                       const Replica& replica) const;

  /// Evicts LRU unprotected replicas of `zone` until `bytes` fit.
  /// Returns false (leaving a partial eviction trail) when impossible.
  bool make_room(const std::string& zone, double bytes);

  void add_replica(Entry& entry, const std::string& zone);
  void remove_from_lru(Store& store, std::uint64_t last_use,
                       const std::string& name);

  [[nodiscard]] Entry& entry_for(const std::string& name);
  [[nodiscard]] const Entry& entry_for(const std::string& name) const;
  [[nodiscard]] Store& store_for(const std::string& zone);

  std::map<std::string, Entry> datasets_;
  std::map<std::string, Store> stores_;
  /// (zone, dataset) -> pins force-dropped by fail_store, kept so late
  /// unpin() calls from interrupted readers do not throw.
  std::map<std::pair<std::string, std::string>, std::size_t> lost_pins_;
  std::map<std::string, std::size_t> lineage_;  ///< consumers left
  std::uint64_t clock_ = 0;
  std::uint64_t total_evictions_ = 0;
  std::vector<std::string> eviction_log_;
};

}  // namespace ripple::data
