#pragma once

/// \file catalog.hpp
/// The replica catalog: datasets, per-zone stores with finite capacity,
/// pinning and lineage reference counts, and deterministic LRU eviction.
///
/// This is the data plane's bookkeeping half (the TransferEngine is the
/// movement half). A dataset is a named byte blob with replicas in one
/// or more zones; each zone has a Store with a capacity (infinite until
/// declared via add_store). Transfers reserve space up front, commit a
/// replica on arrival, and release the reservation on failure, so a
/// store can never overcommit. When a reservation does not fit, the
/// least-recently-used *unprotected* replicas are evicted until it does.
///
/// A replica is protected from eviction while it is pinned (explicit
/// pin()/unpin(), used by workflow stages for the datasets they are
/// actively reading) or while its dataset still has lineage consumers
/// (add_consumers()/consume_done(), driven by workflow lineage: an
/// intermediate becomes evictable only when every stage that reads it
/// has finished). Eviction order is deterministic: strictly ascending
/// last-use stamps from a logical clock, name as the tie-break.
///
/// Multi-tenant sharing. The catalog is one namespace shared by every
/// tenant (concurrent workflow session). Two mechanisms make sharing
/// safe and profitable:
///
///  - *Content addressing.* register_dataset() accepts an optional
///    content id. The first name registered under a content id becomes
///    the canonical dataset; later names with the same id become
///    aliases that resolve to it everywhere (replicas, pins, lineage),
///    so tenant B's "b/corpus" hits tenant A's already-warm replica
///    instead of re-transferring. Lineage recorded against an alias
///    before the alias existed is migrated to the canonical entry.
///  - *Per-tenant accounting with global protection.* Pins and lineage
///    consumers are tagged with the tenant that took them, but eviction
///    protection sums them *globally*: a replica whose only remaining
///    consumers belong to another tenant is not evictable by the owning
///    tenant's store pressure (the cross-tenant corner covered in
///    tests/test_dataplane.cpp). Per-tenant byte quotas
///    (set_tenant_quota) bound how much of a store one tenant's
///    transfers may hold: an over-quota reservation fails *without*
///    evicting anyone else's replicas.
///
/// Tenant ids default to "" (the single-tenant runtime), which keeps
/// every pre-tenant call site bit-identical: no quota applies, no
/// per-tenant maps are touched.

#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace ripple::data {

struct Dataset {
  std::string name;
  double bytes = 0.0;
  std::set<std::string> zones;  ///< where committed replicas live

  /// Content address; empty for datasets registered without one. Two
  /// names registered with the same content id share one entry.
  std::string content_id;
};

/// Aggregate view of one zone's store.
struct StoreInfo {
  double capacity = std::numeric_limits<double>::infinity();
  double used = 0.0;      ///< bytes held by committed replicas
  double reserved = 0.0;  ///< bytes promised to in-flight transfers
  std::uint64_t evictions = 0;

  [[nodiscard]] double free() const noexcept {
    return capacity - used - reserved;
  }
};

class ReplicaCatalog {
 public:
  /// Declares (or resizes) the store of `zone` to a finite capacity in
  /// bytes. Zones never declared have infinite capacity. Shrinking
  /// below the currently used+reserved bytes throws.
  void add_store(const std::string& zone, double capacity_bytes);

  /// Registers a dataset resident in `zone`; re-registering adds a
  /// replica location (bytes of the first registration win). May evict
  /// to make room; throws Errc::capacity when the store cannot fit the
  /// replica even after evicting everything unprotected.
  ///
  /// `content_id`, when non-empty, content-addresses the dataset: the
  /// first name registered under an id is canonical, later names become
  /// aliases of it (their pre-existing lineage migrates to the
  /// canonical entry). A name already registered as a distinct dataset
  /// cannot be re-bound to another content id (throws invalid_state).
  void register_dataset(const std::string& name, double bytes,
                        const std::string& zone,
                        const std::string& content_id = "");

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] const Dataset& dataset(const std::string& name) const;
  [[nodiscard]] bool available_in(const std::string& name,
                                  const std::string& zone) const;

  /// The canonical name `name` resolves to (itself unless aliased).
  [[nodiscard]] const std::string& canonical(const std::string& name) const;

  // --- transfer admission -------------------------------------------------

  /// Reserves `bytes` in `zone` for an in-flight transfer, evicting LRU
  /// unprotected replicas as needed. Returns false (reserving nothing)
  /// when the store cannot fit the reservation — or when `tenant` has a
  /// quota in this store and the reservation would exceed it (checked
  /// *before* any eviction, so an over-quota tenant cannot flush other
  /// tenants' replicas on the way to a failed reserve).
  [[nodiscard]] bool reserve(const std::string& zone, double bytes,
                             const std::string& tenant = "");

  /// Returns a reservation made by reserve() (transfer failed/cancelled).
  void release_reservation(const std::string& zone, double bytes,
                           const std::string& tenant = "");

  /// Converts a reservation of dataset(name).bytes into a committed
  /// replica of `name` in `zone`, owned (for per-tenant usage
  /// accounting) by `tenant`.
  void commit_replica(const std::string& name, const std::string& zone,
                      const std::string& tenant = "");

  /// Marks the replica recently used (LRU bump). No-op when absent.
  void touch(const std::string& name, const std::string& zone);

  /// Drops a committed replica; returns false when absent or protected.
  bool drop_replica(const std::string& name, const std::string& zone);

  // --- pinning & lineage --------------------------------------------------

  /// Pin/unpin the replica of `name` in `zone` (pin counts nest, tagged
  /// with the pinning tenant). Pinned replicas are never evicted — by
  /// *any* tenant's pressure. Pinning requires the replica to exist;
  /// unpinning more than `tenant` pinned throws.
  void pin(const std::string& name, const std::string& zone,
           const std::string& tenant = "");
  void unpin(const std::string& name, const std::string& zone,
             const std::string& tenant = "");
  [[nodiscard]] std::size_t pins(const std::string& name,
                                 const std::string& zone) const;

  /// Lineage: records `count` future consumers of `name` on behalf of
  /// `tenant` (the dataset may not be registered yet). While consumers
  /// remain — summed across all tenants — no replica of the dataset is
  /// evicted anywhere.
  void add_consumers(const std::string& name, std::size_t count,
                     const std::string& tenant = "");

  /// One of `tenant`'s consumers finished; at zero total the dataset
  /// becomes evictable.
  void consume_done(const std::string& name, const std::string& tenant = "");

  /// Consumers left across all tenants.
  [[nodiscard]] std::size_t consumers_left(const std::string& name) const;

  // --- tenant quotas ------------------------------------------------------

  /// Caps the bytes `tenant` may hold (committed + reserved) in
  /// `zone`'s store. Tenants without a quota are unbounded. The cap is
  /// enforced by reserve(): an over-quota reservation fails without
  /// evicting.
  void set_tenant_quota(const std::string& zone, const std::string& tenant,
                        double bytes);

  /// Bytes `tenant` currently holds (committed + reserved) in `zone`.
  [[nodiscard]] double tenant_usage(const std::string& zone,
                                    const std::string& tenant) const;

  // --- introspection ------------------------------------------------------

  [[nodiscard]] StoreInfo store(const std::string& zone) const;

  /// The zone's store failed: every replica in it is force-dropped —
  /// pins and lineage notwithstanding — reservations are wiped and the
  /// store itself is forgotten (a later add_store re-declares it; until
  /// then the zone is back to infinite capacity). Returns the names of
  /// datasets that lost a replica, sorted. Pins held on force-dropped
  /// replicas are remembered so the interrupted readers' later unpin()
  /// calls are tolerated no-ops; pin() on a lost replica still throws.
  std::vector<std::string> fail_store(const std::string& zone);

  /// Zones with a declared store, sorted.
  [[nodiscard]] std::vector<std::string> store_zones() const;
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return total_evictions_;
  }

  /// Every eviction in order, as "zone/dataset" — bit-identical across
  /// same-seed runs (the determinism suite diffs it).
  [[nodiscard]] const std::vector<std::string>& eviction_log()
      const noexcept {
    return eviction_log_;
  }

 private:
  struct Replica {
    std::uint64_t last_use = 0;
    std::size_t pins = 0;  ///< total across tenants (protection uses this)
    std::map<std::string, std::size_t> pins_by_tenant;
    std::string owner;  ///< tenant whose commit landed it ("" = shared)
  };

  struct Entry {
    Dataset info;
    std::map<std::string, Replica> replicas;  ///< zone -> state
  };

  struct Store {
    StoreInfo info;
    /// LRU index: (last_use, dataset) ascending. last_use stamps are
    /// unique per touch, dataset tie-break keeps determinism if a
    /// future refactor reuses stamps.
    std::set<std::pair<std::uint64_t, std::string>> lru;
    std::map<std::string, double> used_by_tenant;
    std::map<std::string, double> reserved_by_tenant;
    std::map<std::string, double> quota;  ///< tenant -> byte cap
  };

  /// True when the replica of `entry` may not be evicted.
  [[nodiscard]] bool protected_replica(const Entry& entry,
                                       const Replica& replica) const;

  /// Evicts LRU unprotected replicas of `zone` until `bytes` fit.
  /// Returns false (leaving a partial eviction trail) when impossible.
  bool make_room(const std::string& zone, double bytes);

  void add_replica(Entry& entry, const std::string& zone);
  void remove_from_lru(Store& store, std::uint64_t last_use,
                       const std::string& name);
  void uncharge_owner(Store& store, const Replica& replica, double bytes);

  [[nodiscard]] Entry& entry_for(const std::string& name);
  [[nodiscard]] const Entry& entry_for(const std::string& name) const;
  [[nodiscard]] Store& store_for(const std::string& zone);

  std::map<std::string, Entry> datasets_;  ///< canonical name -> entry
  std::map<std::string, std::string> aliases_;  ///< name -> canonical
  std::map<std::string, std::string> content_index_;  ///< cid -> canonical
  std::map<std::string, Store> stores_;
  /// (zone, dataset) -> pins force-dropped by fail_store, kept so late
  /// unpin() calls from interrupted readers do not throw.
  std::map<std::pair<std::string, std::string>, std::size_t> lost_pins_;
  /// canonical name -> tenant -> consumers left (protection sums them).
  std::map<std::string, std::map<std::string, std::size_t>> lineage_;
  std::uint64_t clock_ = 0;
  std::uint64_t total_evictions_ = 0;
  std::vector<std::string> eviction_log_;
};

}  // namespace ripple::data
