#pragma once

/// \file report.hpp
/// Aligned-table and CSV rendering for benches and examples.
///
/// Every figure/table bench prints its series through Table so output
/// stays consistent and directly comparable with the paper's plots.

#include <string>
#include <vector>

#include "ripple/common/statistics.hpp"

namespace ripple::metrics {

/// A simple column-aligned text table with optional CSV export.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles at the given precision.
  void add_row_values(const std::vector<double>& values, int precision = 4);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;

  /// JSON rendering: an array of row objects keyed by header. Numeric
  /// cells are emitted as numbers so downstream tooling (the BENCH
  /// trajectory) can plot without re-parsing strings.
  [[nodiscard]] std::string to_json() const;

  /// Writes the CSV rendering to `path` (overwrites).
  void write_csv(const std::string& path) const;

  /// Writes the JSON rendering to `path` (overwrites).
  void write_json(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats "mean +/- std" from a Summary with adaptive duration units.
[[nodiscard]] std::string mean_pm_std(const common::Summary& summary);

/// Renders a banner line ("== title ==") used by bench output.
[[nodiscard]] std::string banner(const std::string& title);

}  // namespace ripple::metrics
