#pragma once

/// \file critical_path.hpp
/// Critical-path attribution of a run's makespan from Tracer spans.
///
/// Mirrors the paper's BT/RT/IT-style decompositions: the analyzer
/// walks task spans backwards from the end of the window, at each step
/// following the task whose span ends latest before the current
/// frontier, and attributes that task's interval to phases using its
/// child spans (queue-wait, stage-in/out, run, recovery). Time covered
/// by no task span — scheduler idle, inter-wave gaps — lands in
/// "other". The buckets partition the window exactly, so
/// `Breakdown::total()` equals `window_end - window_begin` up to
/// floating-point rounding (the ablation gate asserts within 1%).

#include <cstddef>
#include <string>
#include <vector>

#include "ripple/metrics/report.hpp"
#include "ripple/metrics/tracer.hpp"

namespace ripple::metrics {

/// Makespan attribution along the critical path.
struct Breakdown {
  double window_begin = 0.0;
  double window_end = 0.0;
  double queue_wait = 0.0;  ///< child spans with category "queue"
  double data_wait = 0.0;   ///< category "data" (stage-in/out)
  double compute = 0.0;     ///< category "compute"
  double recovery = 0.0;    ///< category "recovery" (backoff, respawn)
  double other = 0.0;       ///< uncovered time (idle, untraced)
  /// Task uids on the critical path, in chronological order.
  std::vector<std::string> path;

  [[nodiscard]] double total() const noexcept {
    return queue_wait + data_wait + compute + recovery + other;
  }

  /// Paper-style breakdown table: one row per bucket with seconds and
  /// percent of the window.
  [[nodiscard]] Table table() const;
};

/// Attributes [window_begin, window_end] along the critical path of
/// `tracer`'s task spans (category "task"). Open spans are treated as
/// ending at window_end.
[[nodiscard]] Breakdown critical_path(const Tracer& tracer,
                                      double window_begin, double window_end);

}  // namespace ripple::metrics
