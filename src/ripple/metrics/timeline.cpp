#include "ripple/metrics/timeline.hpp"

#include <set>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::metrics {

Timeline::Timeline(msg::PubSub& bus) {
  bus.subscribe("state", [this](const std::string&, const json::Value& event) {
    TransitionRecord record;
    record.entity = event.at("uid").as_string();
    record.kind = event.at("kind").as_string();
    record.state = event.at("state").as_string();
    record.time = event.at("time").as_double();
    this->record(std::move(record));
  });
}

void Timeline::record(TransitionRecord record) {
  entries_[{record.entity, record.state}].push_back(record.time);
  records_.push_back(std::move(record));
}

double Timeline::state_time(const std::string& entity,
                            const std::string& state) const {
  const auto it = entries_.find({entity, state});
  return it == entries_.end() ? -1.0 : it->second.front();
}

const std::vector<double>& Timeline::state_times(
    const std::string& entity, const std::string& state) const {
  static const std::vector<double> kEmpty;
  const auto it = entries_.find({entity, state});
  return it == entries_.end() ? kEmpty : it->second;
}

double Timeline::last_state_time(const std::string& entity,
                                 const std::string& state) const {
  const auto it = entries_.find({entity, state});
  return it == entries_.end() ? -1.0 : it->second.back();
}

std::size_t Timeline::entry_count(const std::string& entity,
                                  const std::string& state) const {
  const auto it = entries_.find({entity, state});
  return it == entries_.end() ? 0 : it->second.size();
}

double Timeline::duration(const std::string& entity, const std::string& from,
                          const std::string& to) const {
  const double t_from = state_time(entity, from);
  const double t_to = state_time(entity, to);
  ensure(t_from >= 0.0, Errc::not_found,
         strutil::cat(entity, " never entered state ", from));
  ensure(t_to >= 0.0, Errc::not_found,
         strutil::cat(entity, " never entered state ", to));
  return t_to - t_from;
}

std::size_t Timeline::count(const std::string& kind,
                            const std::string& state) const {
  std::set<std::string> seen;
  for (const auto& record : records_) {
    if (record.kind == kind && record.state == state) {
      seen.insert(record.entity);
    }
  }
  return seen.size();
}

std::vector<std::string> Timeline::entities_in(const std::string& kind,
                                               const std::string& state) const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const auto& record : records_) {
    if (record.kind == kind && record.state == state &&
        seen.insert(record.entity).second) {
      out.push_back(record.entity);
    }
  }
  return out;
}

void Timeline::clear() {
  records_.clear();
  entries_.clear();
}

}  // namespace ripple::metrics
