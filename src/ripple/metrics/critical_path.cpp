#include "ripple/metrics/critical_path.hpp"

#include <algorithm>
#include <map>

#include "ripple/common/strutil.hpp"

namespace ripple::metrics {

namespace {

constexpr double kEps = 1e-12;

/// Phase priority when child spans overlap (compute wins over the
/// waits it overlaps with, e.g. an overlapped stage-in).
int priority_of(const std::string& category) {
  if (category == "compute") return 4;
  if (category == "recovery") return 3;
  if (category == "data") return 2;
  if (category == "queue") return 1;
  return 0;
}

double* bucket_of(Breakdown& out, int priority) {
  switch (priority) {
    case 4: return &out.compute;
    case 3: return &out.recovery;
    case 2: return &out.data_wait;
    case 1: return &out.queue_wait;
    default: return &out.other;
  }
}

struct Phase {
  double begin = 0.0;
  double end = 0.0;
  int priority = 0;
};

/// Attributes [seg_begin, seg_end] of one task using its child phase
/// spans: an elementary-interval sweep where the highest-priority
/// covering phase wins and uncovered time is "other".
void attribute_segment(const Span& task, double seg_begin, double seg_end,
                       const std::multimap<SpanId, const Span*>& children,
                       double window_end, Breakdown& out) {
  std::vector<Phase> phases;
  std::vector<double> cuts{seg_begin, seg_end};
  const auto [first, last] = children.equal_range(task.id);
  for (auto it = first; it != last; ++it) {
    const Span& child = *it->second;
    const int priority = priority_of(child.category);
    if (priority == 0) continue;
    const double child_end = child.end < 0.0 ? window_end : child.end;
    const double begin = std::max(child.begin, seg_begin);
    const double end = std::min(child_end, seg_end);
    if (end <= begin + kEps) continue;
    phases.push_back({begin, end, priority});
    cuts.push_back(begin);
    cuts.push_back(end);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double a = cuts[i];
    const double b = cuts[i + 1];
    const double mid = 0.5 * (a + b);
    int best = 0;
    for (const Phase& phase : phases) {
      if (phase.begin <= mid && mid < phase.end) {
        best = std::max(best, phase.priority);
      }
    }
    *bucket_of(out, best) += b - a;
  }
}

}  // namespace

Breakdown critical_path(const Tracer& tracer, double window_begin,
                        double window_end) {
  Breakdown out;
  out.window_begin = window_begin;
  out.window_end = window_end;

  std::vector<const Span*> tasks;
  std::multimap<SpanId, const Span*> children;
  for (const Span& span : tracer.spans()) {
    if (span.category == "task") tasks.push_back(&span);
    if (span.parent != 0) children.emplace(span.parent, &span);
  }

  double frontier = window_end;
  while (frontier > window_begin + kEps) {
    // The critical task: among spans overlapping (window_begin,
    // frontier), the one reaching closest to the frontier; later
    // begins break ties (shorter hops keep the path tight). Scanning
    // the log in order makes the final tie-break deterministic.
    const Span* best = nullptr;
    double best_end = 0.0;
    for (const Span* task : tasks) {
      if (task->begin >= frontier - kEps) continue;
      const double end =
          std::min(task->end < 0.0 ? window_end : task->end, frontier);
      if (end <= task->begin + kEps) continue;
      if (best == nullptr || end > best_end ||
          (end == best_end && task->begin > best->begin)) {
        best = task;
        best_end = end;
      }
    }
    if (best == nullptr) {
      out.other += frontier - window_begin;
      break;
    }
    if (best_end < frontier) out.other += frontier - best_end;  // idle gap
    const double seg_begin = std::max(best->begin, window_begin);
    attribute_segment(*best, seg_begin, best_end, children, window_end, out);
    out.path.push_back(best->entity);
    frontier = seg_begin;
  }
  std::reverse(out.path.begin(), out.path.end());
  return out;
}

Table Breakdown::table() const {
  const double window = window_end - window_begin;
  const double denom = window > 0.0 ? window : 1.0;
  Table table({"phase", "seconds", "percent"});
  const auto row = [&](const char* name, double seconds) {
    table.add_row({name, strutil::cat(seconds),
                   strutil::cat(100.0 * seconds / denom)});
  };
  row("queue-wait", queue_wait);
  row("data-wait", data_wait);
  row("compute", compute);
  row("recovery", recovery);
  row("other", other);
  row("total", total());
  return table;
}

}  // namespace ripple::metrics
