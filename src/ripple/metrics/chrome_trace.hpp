#pragma once

/// \file chrome_trace.hpp
/// Chrome trace-event JSON export for Tracer spans and Counter samples.
///
/// Emits the Trace Event Format that chrome://tracing and Perfetto
/// (https://ui.perfetto.dev) load directly: spans become complete
/// ("ph":"X") events with microsecond ts/dur, counter samples become
/// counter ("ph":"C") events, and each (category, entity) pair gets
/// its own named track via thread-name metadata events. Output goes
/// through common::json, so it is deterministic (ordered keys) and
/// round-trips through Value::parse — the trace-artifact ctest check
/// relies on both.

#include <string>

#include "ripple/common/json.hpp"
#include "ripple/metrics/counters.hpp"
#include "ripple/metrics/tracer.hpp"

namespace ripple::metrics {

/// Builds the trace document ({"traceEvents": [...], ...}) in memory.
/// Spans still open are clamped to the last time seen in the log.
[[nodiscard]] json::Value chrome_trace_json(const Tracer& tracer,
                                            const Counters* counters = nullptr);

/// Writes chrome_trace_json() to `path` (overwrites). By convention
/// benches write "<bench>.trace.json" under bench_out/, which CI
/// uploads and smoke-validates.
void write_chrome_trace(const std::string& path, const Tracer& tracer,
                        const Counters* counters = nullptr);

}  // namespace ripple::metrics
