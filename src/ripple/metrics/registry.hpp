#pragma once

/// \file registry.hpp
/// Central collection point for the paper's three metrics:
/// BT (bootstrap time, Fig. 3), RT (response time, Figs. 4-5) and
/// IT (inference time, Fig. 6), plus arbitrary named duration series.

#include <map>
#include <string>
#include <vector>

#include "ripple/common/statistics.hpp"
#include "ripple/msg/message.hpp"

namespace ripple::metrics {

/// One service bootstrap, decomposed like the paper's Fig. 3 stacks.
struct BootstrapRecord {
  std::string uid;        ///< service uid
  double launch = 0.0;    ///< process launch on target resources
  double init = 0.0;      ///< model load + initialization
  double publish = 0.0;   ///< endpoint publication
  std::size_t cohort = 0; ///< concurrent instances in this wave

  [[nodiscard]] double total() const noexcept {
    return launch + init + publish;
  }
};

/// Aggregated component summaries of a request series.
struct RequestSeries {
  common::Summary communication;
  common::Summary service;
  common::Summary inference;
  common::Summary total;

  void add(const msg::RequestTiming& timing);
  [[nodiscard]] std::size_t count() const noexcept { return total.count(); }
  [[nodiscard]] json::Value to_json() const;
};

class Registry {
 public:
  // --- bootstrap (BT) ---
  void add_bootstrap(BootstrapRecord record);
  [[nodiscard]] const std::vector<BootstrapRecord>& bootstraps() const
      noexcept {
    return bootstraps_;
  }
  [[nodiscard]] common::Summary bootstrap_component(
      const std::string& component) const;  // "launch"|"init"|"publish"|"total"

  // --- requests (RT / IT), grouped into named series ---
  void add_request(const std::string& series, const msg::RequestTiming& t);
  [[nodiscard]] bool has_series(const std::string& series) const;
  [[nodiscard]] const RequestSeries& series(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> series_names() const;

  // --- free-form duration series ---
  void add_duration(const std::string& name, double seconds);
  [[nodiscard]] const common::Summary& durations(const std::string& name) const;
  [[nodiscard]] bool has_durations(const std::string& name) const;

  void clear();

  [[nodiscard]] json::Value to_json() const;

 private:
  std::vector<BootstrapRecord> bootstraps_;
  std::map<std::string, RequestSeries> request_series_;
  std::map<std::string, common::Summary> duration_series_;
};

}  // namespace ripple::metrics
