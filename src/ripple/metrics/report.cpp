#include "ripple/metrics/report.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <optional>

#include "ripple/common/error.hpp"
#include "ripple/common/json.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::metrics {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ensure(!headers_.empty(), Errc::invalid_argument,
         "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  ensure(cells.size() == headers_.size(), Errc::invalid_argument,
         strutil::cat("row has ", cells.size(), " cells, table has ",
                      headers_.size(), " columns"));
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) {
    cells.push_back(strutil::format_fixed(v, precision));
  }
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += strutil::pad_left(cells[c], widths[c]);
      out += (c + 1 == cells.size()) ? "\n" : "  ";
    }
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (const std::size_t w : widths) rule += w + 2;
  out += std::string(rule > 2 ? rule - 2 : rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string Table::to_csv() const {
  const auto escape_cell = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (const char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ',';
    out += escape_cell(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += escape_cell(row[c]);
    }
    out += '\n';
  }
  return out;
}

void Table::write_csv(const std::string& path) const {
  std::ofstream file(path);
  ensure(static_cast<bool>(file), Errc::io_error,
         strutil::cat("cannot write '", path, "'"));
  file << to_csv();
}

namespace {

/// The whole cell parses as a finite double (the CSV convention the
/// benches already follow for numeric columns). Non-finite values stay
/// strings: a bare `inf`/`nan` would make the emitted JSON invalid.
std::optional<double> cell_as_number(const std::string& cell) {
  if (cell.empty()) return std::nullopt;
  double value = 0.0;
  const char* end = cell.data() + cell.size();
  const auto [parsed, errc] = std::from_chars(cell.data(), end, value);
  if (errc != std::errc{} || parsed != end) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

}  // namespace

std::string Table::to_json() const {
  json::Value rows = json::Value::array();
  for (const auto& row : rows_) {
    json::Value obj = json::Value::object();
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (const auto number = cell_as_number(row[c])) {
        obj.set(headers_[c], *number);
      } else {
        obj.set(headers_[c], row[c]);
      }
    }
    rows.push_back(std::move(obj));
  }
  return rows.dump(2);
}

void Table::write_json(const std::string& path) const {
  std::ofstream file(path);
  ensure(static_cast<bool>(file), Errc::io_error,
         strutil::cat("cannot write '", path, "'"));
  file << to_json() << '\n';
}

std::string mean_pm_std(const common::Summary& summary) {
  if (summary.empty()) return "n/a";
  return strutil::cat(strutil::format_duration(summary.mean()), " +/- ",
                      strutil::format_duration(summary.stddev()));
}

std::string banner(const std::string& title) {
  return strutil::cat("\n== ", title, " ==\n");
}

}  // namespace ripple::metrics
