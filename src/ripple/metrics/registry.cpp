#include "ripple/metrics/registry.hpp"

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::metrics {

void RequestSeries::add(const msg::RequestTiming& timing) {
  communication.add(timing.communication);
  service.add(timing.service);
  inference.add(timing.inference);
  total.add(timing.total);
}

json::Value RequestSeries::to_json() const {
  json::Value out = json::Value::object();
  out.set("communication", communication.to_json());
  out.set("service", service.to_json());
  out.set("inference", inference.to_json());
  out.set("total", total.to_json());
  return out;
}

void Registry::add_bootstrap(BootstrapRecord record) {
  bootstraps_.push_back(std::move(record));
}

common::Summary Registry::bootstrap_component(
    const std::string& component) const {
  common::Summary out;
  for (const auto& record : bootstraps_) {
    if (component == "launch") {
      out.add(record.launch);
    } else if (component == "init") {
      out.add(record.init);
    } else if (component == "publish") {
      out.add(record.publish);
    } else if (component == "total") {
      out.add(record.total());
    } else {
      raise(Errc::invalid_argument,
            strutil::cat("unknown bootstrap component '", component, "'"));
    }
  }
  return out;
}

void Registry::add_request(const std::string& series,
                           const msg::RequestTiming& t) {
  request_series_[series].add(t);
}

bool Registry::has_series(const std::string& series) const {
  return request_series_.count(series) != 0;
}

const RequestSeries& Registry::series(const std::string& name) const {
  const auto it = request_series_.find(name);
  ensure(it != request_series_.end(), Errc::not_found,
         strutil::cat("no request series '", name, "'"));
  return it->second;
}

std::vector<std::string> Registry::series_names() const {
  std::vector<std::string> out;
  out.reserve(request_series_.size());
  for (const auto& [name, series] : request_series_) out.push_back(name);
  return out;
}

void Registry::add_duration(const std::string& name, double seconds) {
  duration_series_[name].add(seconds);
}

const common::Summary& Registry::durations(const std::string& name) const {
  const auto it = duration_series_.find(name);
  ensure(it != duration_series_.end(), Errc::not_found,
         strutil::cat("no duration series '", name, "'"));
  return it->second;
}

bool Registry::has_durations(const std::string& name) const {
  return duration_series_.count(name) != 0;
}

void Registry::clear() {
  bootstraps_.clear();
  request_series_.clear();
  duration_series_.clear();
}

json::Value Registry::to_json() const {
  json::Value out = json::Value::object();
  json::Value boot = json::Value::object();
  boot.set("count", bootstraps_.size());
  if (!bootstraps_.empty()) {
    boot.set("launch", bootstrap_component("launch").to_json());
    boot.set("init", bootstrap_component("init").to_json());
    boot.set("publish", bootstrap_component("publish").to_json());
    boot.set("total", bootstrap_component("total").to_json());
  }
  out.set("bootstrap", std::move(boot));

  json::Value requests = json::Value::object();
  for (const auto& [name, series] : request_series_) {
    requests.set(name, series.to_json());
  }
  out.set("requests", std::move(requests));

  json::Value durations = json::Value::object();
  for (const auto& [name, summary] : duration_series_) {
    durations.set(name, summary.to_json());
  }
  out.set("durations", std::move(durations));
  return out;
}

}  // namespace ripple::metrics
