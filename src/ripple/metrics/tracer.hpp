#pragma once

/// \file tracer.hpp
/// Deterministic sim-time span tracing for the whole runtime.
///
/// The Tracer records nested begin/end spans (task lifecycle phases,
/// scheduler placement passes, transfers, batch steps, recovery
/// episodes) stamped with *simulation* time. Tracing is off by default;
/// when disabled every call is a single branch and no memory is
/// touched, so instrumented hot paths stay cheap.
///
/// Determinism is the house style and observability is no exception:
/// span ids derive from the owning entity's uid plus a session-local
/// sequence (never from addresses or wall time), spans land in the log
/// in begin order on the event-loop thread, and records produced on
/// shard workers go through per-shard lanes committed in merged
/// `(time, sequence, shard)` order exactly like ShardExecutor results.
/// The same seed therefore yields a bit-identical span log at any
/// shard count, which `span_log_hash()` fingerprints (FNV-1a) and the
/// sharded suites assert.

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ripple/common/shard_executor.hpp"

namespace ripple::metrics {

/// Stable span identifier: fnv1a(entity uid) folded with the span's
/// session-local sequence number. 0 means "no span" (the null parent,
/// or a begin() issued while tracing is disabled); end()/arg() on id 0
/// are no-ops, so call sites need no enabled() guards of their own.
using SpanId = std::uint64_t;

/// One traced interval. `end < 0` while the span is still open.
struct Span {
  SpanId id = 0;
  SpanId parent = 0;     ///< enclosing span, 0 for roots
  std::string name;      ///< e.g. "queue-wait", "run", "stage-in"
  std::string category;  ///< e.g. "task", "queue", "data", "compute"
  std::string entity;    ///< uid of the owning entity
  double begin = 0.0;
  double end = -1.0;
  /// Deterministically ordered key/value annotations.
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  using Args = std::initializer_list<std::pair<std::string, std::string>>;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Tracing is off by default; everything below no-ops until enabled.
  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Opens a span at `time`. Returns 0 when disabled.
  SpanId begin(std::string name, std::string category, std::string entity,
               double time, SpanId parent = 0, Args args = {});

  /// Closes an open span; unknown/zero ids are ignored (the span may
  /// have been opened before tracing was enabled, or never opened).
  void end(SpanId id, double time);

  /// Appends an annotation to an open span; no-op on unknown ids.
  void arg(SpanId id, std::string key, std::string value);

  /// A zero-length marker span (Chrome "instant"-style).
  void instant(std::string name, std::string category, std::string entity,
               double time, SpanId parent = 0, Args args = {});

  /// Records an already-closed span in one call.
  SpanId complete(std::string name, std::string category, std::string entity,
                  double begin_time, double end_time, SpanId parent = 0,
                  Args args = {});

  // --- per-shard lanes (sharded placement / replan passes) ---------
  //
  // Worker threads may not touch the main log; a pass opens `n` lanes,
  // each shard appends completed spans to its own lane (no locks, no
  // shared writes), and the caller commits them merged in MergeKey
  // order back on the loop thread — the same protocol ShardExecutor
  // kernels use for their own results, and for the same reason: the
  // committed order is a pure function of the records.

  /// Opens `n` empty lanes (loop thread, before the fan-out).
  void begin_lanes(std::size_t n);

  /// Appends a completed span to `lane` (any thread; lanes are
  /// disjoint). `key` decides the committed order.
  void lane_complete(std::size_t lane, common::MergeKey key, std::string name,
                     std::string category, std::string entity,
                     double begin_time, double end_time,
                     std::vector<std::pair<std::string, std::string>> args = {});

  /// Merges and appends all lane records to the log (loop thread,
  /// after the fan-out joined).
  void commit_lanes();

  // --- inspection --------------------------------------------------

  /// The span log, in deterministic begin/commit order.
  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }

  /// Spans begun but not yet ended.
  [[nodiscard]] std::size_t open_spans() const noexcept {
    return open_.size();
  }

  /// FNV-1a fingerprint of the full span log (names, categories,
  /// entities, times, parents, args). Same seed => same hash, at any
  /// shard count.
  [[nodiscard]] std::uint64_t span_log_hash() const;

  void clear();

 private:
  struct LaneRecord {
    common::MergeKey key;
    Span span;
  };

  [[nodiscard]] SpanId make_id(const std::string& entity);

  bool enabled_ = false;
  std::uint64_t next_sequence_ = 0;
  std::vector<Span> spans_;
  std::map<SpanId, std::size_t> open_;  ///< open span id -> log index
  std::vector<std::vector<LaneRecord>> lanes_;
};

}  // namespace ripple::metrics
