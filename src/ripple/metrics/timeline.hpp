#pragma once

/// \file timeline.hpp
/// State-transition timeline, fed by the runtime's pub/sub bus.
///
/// Mirrors RADICAL-Analytics: every entity (pilot, task, service)
/// publishes timestamped state transitions; the Timeline records every
/// time each entity entered each state and answers duration queries
/// such as "time from LAUNCHING to RUNNING of service X". Entities may
/// re-enter a state (a task restarted after a node crash runs twice);
/// state_time() keeps its historical first-entry semantics while
/// state_times()/last_state_time()/entry_count() expose the full
/// history.

#include <map>
#include <string>
#include <vector>

#include "ripple/msg/pubsub.hpp"

namespace ripple::metrics {

struct TransitionRecord {
  std::string entity;  ///< uid
  std::string kind;    ///< "task" | "service" | "pilot"
  std::string state;
  double time = 0.0;
};

class Timeline {
 public:
  /// Subscribes to the "state" topic of `bus`.
  explicit Timeline(msg::PubSub& bus);

  /// Records a transition directly (bypassing the bus).
  void record(TransitionRecord record);

  [[nodiscard]] const std::vector<TransitionRecord>& records() const noexcept {
    return records_;
  }

  /// First time `entity` entered `state`; -1 when never.
  [[nodiscard]] double state_time(const std::string& entity,
                                  const std::string& state) const;

  /// Every time `entity` entered `state`, in record order; empty when
  /// never. Restarted/speculated tasks enter RUNNING more than once.
  [[nodiscard]] const std::vector<double>& state_times(
      const std::string& entity, const std::string& state) const;

  /// Most recent time `entity` entered `state`; -1 when never.
  [[nodiscard]] double last_state_time(const std::string& entity,
                                       const std::string& state) const;

  /// How many times `entity` entered `state`.
  [[nodiscard]] std::size_t entry_count(const std::string& entity,
                                        const std::string& state) const;

  /// state_time(to) - state_time(from); throws when either is missing.
  [[nodiscard]] double duration(const std::string& entity,
                                const std::string& from,
                                const std::string& to) const;

  /// Number of distinct entities of `kind` that ever entered `state`.
  [[nodiscard]] std::size_t count(const std::string& kind,
                                  const std::string& state) const;

  /// All uids of `kind` that entered `state`, in first-entry order.
  [[nodiscard]] std::vector<std::string> entities_in(
      const std::string& kind, const std::string& state) const;

  void clear();

 private:
  std::vector<TransitionRecord> records_;
  // (entity, state) -> every entry time, in record order
  std::map<std::pair<std::string, std::string>, std::vector<double>> entries_;
};

}  // namespace ripple::metrics
