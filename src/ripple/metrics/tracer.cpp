#include "ripple/metrics/tracer.hpp"

#include <bit>

#include "ripple/common/hash.hpp"

namespace ripple::metrics {

namespace {

std::uint64_t fold_double(std::uint64_t hash, double value) {
  return common::fnv1a(hash, std::bit_cast<std::uint64_t>(value));
}

}  // namespace

SpanId Tracer::make_id(const std::string& entity) {
  // Stable across runs: entity uids are session-scoped and the
  // sequence counts spans in deterministic log order, so the id is a
  // pure function of the run's history (never of addresses or wall
  // time). Unique with overwhelming probability; uniqueness is only
  // needed among *open* spans, which the open_ map keys by id.
  std::uint64_t hash = common::fnv1a(common::kFnvOffsetBasis, entity);
  hash = common::fnv1a(hash, ++next_sequence_);
  return hash == 0 ? 1 : hash;
}

SpanId Tracer::begin(std::string name, std::string category,
                     std::string entity, double time, SpanId parent,
                     Args args) {
  if (!enabled_) return 0;
  Span span;
  span.id = make_id(entity);
  span.parent = parent;
  span.name = std::move(name);
  span.category = std::move(category);
  span.entity = std::move(entity);
  span.begin = time;
  for (const auto& [key, value] : args) span.args.emplace_back(key, value);
  open_[span.id] = spans_.size();
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::end(SpanId id, double time) {
  if (!enabled_ || id == 0) return;
  const auto it = open_.find(id);
  if (it == open_.end()) return;
  spans_[it->second].end = time;
  open_.erase(it);
}

void Tracer::arg(SpanId id, std::string key, std::string value) {
  if (!enabled_ || id == 0) return;
  const auto it = open_.find(id);
  if (it == open_.end()) return;
  spans_[it->second].args.emplace_back(std::move(key), std::move(value));
}

void Tracer::instant(std::string name, std::string category,
                     std::string entity, double time, SpanId parent,
                     Args args) {
  (void)complete(std::move(name), std::move(category), std::move(entity),
                 time, time, parent, args);
}

SpanId Tracer::complete(std::string name, std::string category,
                        std::string entity, double begin_time,
                        double end_time, SpanId parent, Args args) {
  if (!enabled_) return 0;
  Span span;
  span.id = make_id(entity);
  span.parent = parent;
  span.name = std::move(name);
  span.category = std::move(category);
  span.entity = std::move(entity);
  span.begin = begin_time;
  span.end = end_time;
  for (const auto& [key, value] : args) span.args.emplace_back(key, value);
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::begin_lanes(std::size_t n) {
  if (!enabled_) return;
  lanes_.assign(n, {});
}

void Tracer::lane_complete(
    std::size_t lane, common::MergeKey key, std::string name,
    std::string category, std::string entity, double begin_time,
    double end_time,
    std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled_ || lane >= lanes_.size()) return;
  LaneRecord record;
  record.key = key;
  // The id is assigned at commit time (on the loop thread) so the
  // sequence counter is never touched concurrently.
  record.span.name = std::move(name);
  record.span.category = std::move(category);
  record.span.entity = std::move(entity);
  record.span.begin = begin_time;
  record.span.end = end_time;
  record.span.args = std::move(args);
  lanes_[lane].push_back(std::move(record));
}

void Tracer::commit_lanes() {
  if (!enabled_ || lanes_.empty()) return;
  auto merged = common::merge_shards(
      std::move(lanes_), [](const LaneRecord& r) { return r.key; });
  lanes_.clear();
  for (auto& record : merged) {
    record.span.id = make_id(record.span.entity);
    spans_.push_back(std::move(record.span));
  }
}

std::uint64_t Tracer::span_log_hash() const {
  std::uint64_t hash = common::kFnvOffsetBasis;
  for (const Span& span : spans_) {
    hash = common::fnv1a(hash, span.name);
    hash = common::fnv1a(hash, span.category);
    hash = common::fnv1a(hash, span.entity);
    hash = common::fnv1a(hash, span.parent);
    hash = fold_double(hash, span.begin);
    hash = fold_double(hash, span.end);
    for (const auto& [key, value] : span.args) {
      hash = common::fnv1a(hash, key);
      hash = common::fnv1a(hash, value);
    }
  }
  return hash;
}

void Tracer::clear() {
  spans_.clear();
  open_.clear();
  lanes_.clear();
  next_sequence_ = 0;
}

}  // namespace ripple::metrics
