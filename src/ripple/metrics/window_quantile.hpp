#pragma once

/// \file window_quantile.hpp
/// Sliding-time-window quantile accumulator.
///
/// The serving layer's SLO signal is "p95 request latency over the last
/// W seconds", not the full-lifetime quantile a common::Summary
/// computes: a pool that was slow ten minutes ago but is healthy now
/// must not keep scaling up. WindowQuantile keeps (time, value) samples
/// in arrival order, lazily evicts those older than the window, and
/// computes exact linear-interpolation quantiles (same convention as
/// common::Summary) over what remains.
///
/// Timestamps must be non-decreasing — event-loop time is monotone, and
/// the deque eviction depends on it — so add() rejects a sample older
/// than its predecessor. Queries are O(n log n) in the live sample
/// count, which is fine at autoscaler poll rates (a few Hz over a few
/// hundred samples).

#include <deque>
#include <utility>
#include <vector>

#include "ripple/common/statistics.hpp"
#include "ripple/sim/event_loop.hpp"

namespace ripple::metrics {

class WindowQuantile {
 public:
  /// `window` is the trailing duration samples stay live for: a sample
  /// stamped at time t is visible to queries at `now` while
  /// now - t <= window (inclusive at the boundary).
  explicit WindowQuantile(sim::Duration window);

  /// Records `value` observed at time `now`. Times must be
  /// non-decreasing; a sample stamped before its predecessor throws.
  void add(sim::SimTime now, double value);

  /// Live samples at time `now` (evicts expired ones).
  [[nodiscard]] std::size_t count(sim::SimTime now) const;

  /// Exact q-quantile over the live samples at `now`. Throws when the
  /// window is empty — callers that want a sentinel use count() first.
  [[nodiscard]] double quantile(sim::SimTime now, double q) const;

  /// Appends the live values at `now` to `out` (arrival order). This is
  /// how per-service windows merge into one pooled group quantile.
  void collect(sim::SimTime now, std::vector<double>& out) const;

  [[nodiscard]] sim::Duration window() const noexcept { return window_; }

  void clear();

 private:
  void evict(sim::SimTime now) const;

  sim::Duration window_;
  /// (time, value) in arrival order; eviction pops the front. Mutable
  /// so read paths can evict lazily — eviction never changes what a
  /// query at `now` observes, only drops what it no longer can.
  mutable std::deque<std::pair<sim::SimTime, double>> samples_;
  sim::SimTime last_time_ = 0.0;
  bool has_samples_ = false;  ///< monotonicity guard saw at least one add
};

}  // namespace ripple::metrics
