#include "ripple/metrics/window_quantile.hpp"

#include <algorithm>

#include "ripple/common/error.hpp"

namespace ripple::metrics {

WindowQuantile::WindowQuantile(sim::Duration window) : window_(window) {
  ensure(window_ > 0.0, Errc::invalid_argument,
         "window quantile needs window > 0");
}

void WindowQuantile::add(sim::SimTime now, double value) {
  ensure(!has_samples_ || now >= last_time_, Errc::invalid_argument,
         "window quantile samples must arrive in time order");
  has_samples_ = true;
  last_time_ = now;
  evict(now);
  samples_.emplace_back(now, value);
}

void WindowQuantile::evict(sim::SimTime now) const {
  while (!samples_.empty() && samples_.front().first < now - window_) {
    samples_.pop_front();
  }
}

std::size_t WindowQuantile::count(sim::SimTime now) const {
  evict(now);
  return samples_.size();
}

double WindowQuantile::quantile(sim::SimTime now, double q) const {
  evict(now);
  std::vector<double> sorted;
  sorted.reserve(samples_.size());
  for (const auto& [time, value] : samples_) sorted.push_back(value);
  std::sort(sorted.begin(), sorted.end());
  return common::quantile_sorted(sorted, q);
}

void WindowQuantile::collect(sim::SimTime now,
                             std::vector<double>& out) const {
  evict(now);
  for (const auto& [time, value] : samples_) out.push_back(value);
}

void WindowQuantile::clear() {
  samples_.clear();
  has_samples_ = false;
  last_time_ = 0.0;
}

}  // namespace ripple::metrics
