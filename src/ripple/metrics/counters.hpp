#pragma once

/// \file counters.hpp
/// Named monotonic counters and sampled gauges for the runtime.
///
/// Counters are bumped inline by instrumented subsystems ("sched.grants",
/// "task.restarts", "data.bytes_moved", ...); gauges are registered as
/// callbacks ("loop.pending", "sched.waiting", "store.used_bytes", ...)
/// and both are snapshotted into a sample log on a configurable
/// sim-time tick. Like the Tracer, everything is off by default and a
/// single branch when disabled.
///
/// The sampling tick re-arms itself only while the event loop still has
/// other pending events, so an enabled session's loop drains exactly
/// like a disabled one — run() never spins on its own telemetry. Ticks
/// may extend now() by at most one interval past the last workload
/// event; workloads that measure makespan capture it from their own
/// completion callbacks, not from the drained loop's clock.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ripple/sim/event_loop.hpp"

namespace ripple::metrics {

class Counters {
 public:
  /// One snapshotted (time, name, value) point.
  struct Sample {
    double time = 0.0;
    std::string name;
    double value = 0.0;
  };

  Counters() = default;
  Counters(const Counters&) = delete;
  Counters& operator=(const Counters&) = delete;

  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Adds `delta` to the named monotonic counter.
  void add(const std::string& name, double delta = 1.0);

  /// Sets the named value outright (for push-style gauges such as
  /// "ml.batch_fill" that are cheaper to set at the source than to
  /// poll).
  void set_value(const std::string& name, double value);

  /// Current value of a counter or push-gauge; 0 when never touched.
  [[nodiscard]] double value(const std::string& name) const;

  /// Registers a pull-gauge polled at every sampling tick.
  /// Registration order is the sample order, so register gauges from
  /// deterministic call sites only (Session::enable_tracing does).
  void register_gauge(std::string name, std::function<double()> fn);

  /// Snapshots every counter, push-gauge and pull-gauge at `time`.
  void sample(double time);

  /// Arms the periodic sampling tick on `loop` every `interval`
  /// seconds of sim time. The tick re-arms only while the loop has
  /// other pending events (see file comment).
  void arm_sampling(sim::EventLoop& loop, double interval);

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }

  /// Counter/push-gauge values, in deterministic (sorted-name) order.
  [[nodiscard]] const std::map<std::string, double>& values() const noexcept {
    return values_;
  }

  /// FNV-1a fingerprint of the sample log.
  [[nodiscard]] std::uint64_t sample_log_hash() const;

  void clear();

 private:
  void tick(sim::EventLoop& loop, double interval);

  bool enabled_ = false;
  std::map<std::string, double> values_;
  std::vector<std::pair<std::string, std::function<double()>>> gauges_;
  std::vector<Sample> samples_;
};

}  // namespace ripple::metrics
