#include "ripple/metrics/chrome_trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::metrics {

namespace {

constexpr double kMicros = 1e6;

}  // namespace

json::Value chrome_trace_json(const Tracer& tracer,
                              const Counters* counters) {
  const auto& spans = tracer.spans();
  double last = 0.0;
  for (const Span& span : spans) {
    last = std::max(last, std::max(span.begin, span.end));
  }

  // One track per (category, entity), numbered in first-appearance
  // order so the layout is deterministic.
  std::map<std::string, int> tracks;
  json::Value events = json::Value::array();
  const auto track_of = [&](const Span& span) {
    const std::string key =
        strutil::cat(span.category, ":", span.entity);
    const auto it = tracks.find(key);
    if (it != tracks.end()) return it->second;
    const int tid = static_cast<int>(tracks.size()) + 1;
    tracks.emplace(key, tid);
    json::Value meta = json::Value::object();
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", 1);
    meta.set("tid", tid);
    meta.set("args", json::Value::object({{"name", key}}));
    events.push_back(std::move(meta));
    return tid;
  };

  for (const Span& span : spans) {
    const double end = span.end < 0.0 ? last : span.end;
    json::Value event = json::Value::object();
    event.set("name", span.name);
    event.set("cat", span.category);
    event.set("ph", "X");
    event.set("ts", span.begin * kMicros);
    event.set("dur", (end - span.begin) * kMicros);
    event.set("pid", 1);
    event.set("tid", track_of(span));
    json::Value args = json::Value::object();
    args.set("entity", span.entity);
    args.set("id", strutil::cat(span.id));
    if (span.parent != 0) {
      args.set("parent", strutil::cat(span.parent));
    }
    if (span.end < 0.0) args.set("open", true);
    for (const auto& [key, value] : span.args) args.set(key, value);
    event.set("args", std::move(args));
    events.push_back(std::move(event));
  }

  if (counters != nullptr) {
    for (const Counters::Sample& sample : counters->samples()) {
      json::Value event = json::Value::object();
      event.set("name", sample.name);
      event.set("ph", "C");
      event.set("ts", sample.time * kMicros);
      event.set("pid", 1);
      event.set("args", json::Value::object({{"value", sample.value}}));
      events.push_back(std::move(event));
    }
  }

  json::Value doc = json::Value::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  doc.set("otherData",
          json::Value::object({{"producer", "ripple::metrics::Tracer"},
                               {"spans", spans.size()}}));
  return doc;
}

void write_chrome_trace(const std::string& path, const Tracer& tracer,
                        const Counters* counters) {
  std::ofstream out(path);
  ensure(out.good(), Errc::io_error,
         strutil::cat("cannot open trace file ", path));
  out << chrome_trace_json(tracer, counters).dump() << "\n";
}

}  // namespace ripple::metrics
