#include "ripple/metrics/counters.hpp"

#include <bit>

#include "ripple/common/hash.hpp"

namespace ripple::metrics {

void Counters::add(const std::string& name, double delta) {
  if (!enabled_) return;
  values_[name] += delta;
}

void Counters::set_value(const std::string& name, double value) {
  if (!enabled_) return;
  values_[name] = value;
}

double Counters::value(const std::string& name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

void Counters::register_gauge(std::string name, std::function<double()> fn) {
  gauges_.emplace_back(std::move(name), std::move(fn));
}

void Counters::sample(double time) {
  if (!enabled_) return;
  for (const auto& [name, value] : values_) {
    samples_.push_back({time, name, value});
  }
  for (const auto& [name, fn] : gauges_) {
    samples_.push_back({time, name, fn()});
  }
}

void Counters::arm_sampling(sim::EventLoop& loop, double interval) {
  if (!enabled_ || interval <= 0.0) return;
  loop.call_after(interval, [this, &loop, interval] { tick(loop, interval); });
}

void Counters::tick(sim::EventLoop& loop, double interval) {
  sample(loop.now());
  // Re-arm only while the workload still has events of its own, so the
  // loop drains instead of ticking forever.
  if (enabled_ && loop.pending() > 0) {
    loop.call_after(interval,
                    [this, &loop, interval] { tick(loop, interval); });
  }
}

std::uint64_t Counters::sample_log_hash() const {
  std::uint64_t hash = common::kFnvOffsetBasis;
  for (const Sample& sample : samples_) {
    hash = common::fnv1a(hash, sample.name);
    hash = common::fnv1a(hash, std::bit_cast<std::uint64_t>(sample.time));
    hash = common::fnv1a(hash, std::bit_cast<std::uint64_t>(sample.value));
  }
  return hash;
}

void Counters::clear() {
  values_.clear();
  samples_.clear();
}

}  // namespace ripple::metrics
