#pragma once

/// \file entities.hpp
/// Stateful runtime entities: Pilot, Task, Service.
///
/// Entities are owned by their managers; user code refers to them by uid
/// and reads them through const accessors. State changes go through
/// set_state(), which validates the transition and records a timestamp,
/// feeding the metrics Timeline.

#include <map>
#include <string>
#include <vector>

#include "ripple/core/descriptions.hpp"
#include "ripple/core/states.hpp"
#include "ripple/platform/node.hpp"

namespace ripple::platform {
class Cluster;
}

namespace ripple::core {

/// Bootstrap-time decomposition of one service instance (Fig. 3).
struct BootstrapTiming {
  double launch = -1.0;
  double init = -1.0;
  double publish = -1.0;

  [[nodiscard]] bool complete() const noexcept {
    return launch >= 0 && init >= 0 && publish >= 0;
  }
  [[nodiscard]] double total() const noexcept {
    return launch + init + publish;
  }
};

class Pilot {
 public:
  Pilot(std::string uid, PilotDescription desc, platform::Cluster* cluster);

  [[nodiscard]] const std::string& uid() const noexcept { return uid_; }
  [[nodiscard]] const PilotDescription& description() const noexcept {
    return desc_;
  }
  [[nodiscard]] PilotState state() const noexcept { return state_; }
  [[nodiscard]] platform::Cluster& cluster() const noexcept {
    return *cluster_;
  }
  [[nodiscard]] const std::vector<platform::Node*>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] std::vector<platform::Node*>& nodes() noexcept {
    return nodes_;
  }

  /// Validates and applies a state transition; records `now`.
  void set_state(PilotState next, double now);

  [[nodiscard]] double state_time(PilotState state) const;

 private:
  std::string uid_;
  PilotDescription desc_;
  platform::Cluster* cluster_;
  std::vector<platform::Node*> nodes_;
  PilotState state_ = PilotState::created;
  std::map<PilotState, double> timestamps_;
};

class Task {
 public:
  Task(std::string uid, TaskDescription desc);

  [[nodiscard]] const std::string& uid() const noexcept { return uid_; }
  [[nodiscard]] const TaskDescription& description() const noexcept {
    return desc_;
  }
  [[nodiscard]] TaskState state() const noexcept { return state_; }

  void set_state(TaskState next, double now);

  /// First time this task entered `state`; -1 when never.
  [[nodiscard]] double state_time(TaskState state) const;

  /// Time between first entries of two visited states.
  [[nodiscard]] double duration(TaskState from, TaskState to) const;

  [[nodiscard]] const std::string& pilot_uid() const noexcept {
    return pilot_uid_;
  }
  void set_pilot_uid(std::string uid) { pilot_uid_ = std::move(uid); }

  [[nodiscard]] const platform::Slot& slot() const noexcept { return slot_; }
  void set_slot(platform::Slot slot) { slot_ = std::move(slot); }

  [[nodiscard]] const json::Value& result() const noexcept { return result_; }
  void set_result(json::Value result) { result_ = std::move(result); }

  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  void set_error(std::string error) { error_ = std::move(error); }

 private:
  std::string uid_;
  TaskDescription desc_;
  TaskState state_ = TaskState::created;
  std::map<TaskState, double> timestamps_;
  std::string pilot_uid_;
  platform::Slot slot_;
  json::Value result_;
  std::string error_;
};

class Service {
 public:
  Service(std::string uid, ServiceDescription desc);

  [[nodiscard]] const std::string& uid() const noexcept { return uid_; }
  [[nodiscard]] const ServiceDescription& description() const noexcept {
    return desc_;
  }
  [[nodiscard]] ServiceState state() const noexcept { return state_; }

  void set_state(ServiceState next, double now);

  [[nodiscard]] double state_time(ServiceState state) const;
  [[nodiscard]] double duration(ServiceState from, ServiceState to) const;

  /// RPC address clients use once RUNNING ("svc.000002").
  [[nodiscard]] const std::string& endpoint() const noexcept {
    return endpoint_;
  }
  void set_endpoint(std::string endpoint) { endpoint_ = std::move(endpoint); }

  [[nodiscard]] const std::string& pilot_uid() const noexcept {
    return pilot_uid_;
  }
  void set_pilot_uid(std::string uid) { pilot_uid_ = std::move(uid); }

  [[nodiscard]] const platform::Slot& slot() const noexcept { return slot_; }
  void set_slot(platform::Slot slot) { slot_ = std::move(slot); }

  [[nodiscard]] bool remote() const noexcept { return remote_; }
  void set_remote(bool remote) { remote_ = remote; }

  [[nodiscard]] const BootstrapTiming& bootstrap() const noexcept {
    return bootstrap_;
  }
  [[nodiscard]] BootstrapTiming& bootstrap() noexcept { return bootstrap_; }

  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  void set_error(std::string error) { error_ = std::move(error); }

  [[nodiscard]] double last_heartbeat() const noexcept {
    return last_heartbeat_;
  }
  void set_last_heartbeat(double t) noexcept { last_heartbeat_ = t; }

  [[nodiscard]] int restarts() const noexcept { return restarts_; }
  void count_restart() noexcept { ++restarts_; }

 private:
  std::string uid_;
  ServiceDescription desc_;
  ServiceState state_ = ServiceState::created;
  std::map<ServiceState, double> timestamps_;
  std::string endpoint_;
  std::string pilot_uid_;
  platform::Slot slot_;
  bool remote_ = false;
  BootstrapTiming bootstrap_;
  std::string error_;
  double last_heartbeat_ = -1.0;
  int restarts_ = 0;
};

}  // namespace ripple::core
