#pragma once

/// \file states.hpp
/// Entity state machines for pilots, tasks and service tasks.
///
/// The task model follows RADICAL-Pilot's stateful execution paradigm;
/// the service model adds the bootstrap sub-states this paper introduces
/// (LAUNCHING -> INITIALIZING -> PUBLISHING -> RUNNING), from which the
/// Fig. 3 bootstrap-time decomposition is derived. Transition legality is
/// enforced centrally so a bug in any manager surfaces immediately.

#include <string>

namespace ripple::core {

enum class TaskState {
  created,         ///< description accepted, uid assigned
  waiting,         ///< blocked on task dependencies or service readiness
  staging_input,   ///< input staging in progress
  scheduling,      ///< queued at the scheduler
  scheduled,       ///< slot assigned on a node
  launching,       ///< process launch in progress
  running,         ///< payload executing
  staging_output,  ///< output staging in progress
  done,            ///< terminal: success
  failed,          ///< terminal: error
  canceled,        ///< terminal: canceled by the user
};

enum class ServiceState {
  created,       ///< description accepted
  scheduling,    ///< queued at the scheduler
  scheduled,     ///< slot assigned
  launching,     ///< service executable starting on target resources
  initializing,  ///< model loading / program initialization
  publishing,    ///< endpoint publication to the service registry
  running,       ///< ready: accepting client requests
  draining,      ///< stop requested; finishing outstanding requests
  stopped,       ///< terminal: clean shutdown
  failed,        ///< terminal: crash or liveness failure
  canceled,      ///< terminal: canceled before running
};

enum class PilotState {
  created,   ///< description accepted
  active,    ///< resources acquired, agent running
  done,      ///< terminal: walltime ended or session closed
  failed,    ///< terminal
  canceled,  ///< terminal
};

[[nodiscard]] const char* to_string(TaskState state) noexcept;
[[nodiscard]] const char* to_string(ServiceState state) noexcept;
[[nodiscard]] const char* to_string(PilotState state) noexcept;

[[nodiscard]] bool is_terminal(TaskState state) noexcept;
[[nodiscard]] bool is_terminal(ServiceState state) noexcept;
[[nodiscard]] bool is_terminal(PilotState state) noexcept;

/// Legal state-machine moves. Any state may move to failed/canceled
/// unless already terminal.
[[nodiscard]] bool transition_allowed(TaskState from, TaskState to) noexcept;
[[nodiscard]] bool transition_allowed(ServiceState from,
                                      ServiceState to) noexcept;
[[nodiscard]] bool transition_allowed(PilotState from, PilotState to) noexcept;

}  // namespace ripple::core
