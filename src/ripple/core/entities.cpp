#include "ripple/core/entities.hpp"

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::core {

namespace {

template <typename State>
void check_transition(const std::string& uid, State from, State to) {
  ensure(transition_allowed(from, to), Errc::invalid_state,
         strutil::cat(uid, ": illegal transition ", to_string(from), " -> ",
                      to_string(to)));
}

}  // namespace

Pilot::Pilot(std::string uid, PilotDescription desc,
             platform::Cluster* cluster)
    : uid_(std::move(uid)), desc_(std::move(desc)), cluster_(cluster) {
  ensure(cluster_ != nullptr, Errc::invalid_argument,
         "pilot needs a cluster");
}

void Pilot::set_state(PilotState next, double now) {
  check_transition(uid_, state_, next);
  state_ = next;
  timestamps_.try_emplace(next, now);
}

double Pilot::state_time(PilotState state) const {
  const auto it = timestamps_.find(state);
  return it == timestamps_.end() ? -1.0 : it->second;
}

Task::Task(std::string uid, TaskDescription desc)
    : uid_(std::move(uid)), desc_(std::move(desc)) {}

void Task::set_state(TaskState next, double now) {
  check_transition(uid_, state_, next);
  state_ = next;
  timestamps_.try_emplace(next, now);
}

double Task::state_time(TaskState state) const {
  const auto it = timestamps_.find(state);
  return it == timestamps_.end() ? -1.0 : it->second;
}

double Task::duration(TaskState from, TaskState to) const {
  const double t_from = state_time(from);
  const double t_to = state_time(to);
  ensure(t_from >= 0 && t_to >= 0, Errc::invalid_state,
         strutil::cat(uid_, ": duration over unvisited states ",
                      to_string(from), " -> ", to_string(to)));
  return t_to - t_from;
}

Service::Service(std::string uid, ServiceDescription desc)
    : uid_(std::move(uid)), desc_(std::move(desc)) {}

void Service::set_state(ServiceState next, double now) {
  check_transition(uid_, state_, next);
  state_ = next;
  timestamps_.try_emplace(next, now);
}

double Service::state_time(ServiceState state) const {
  const auto it = timestamps_.find(state);
  return it == timestamps_.end() ? -1.0 : it->second;
}

double Service::duration(ServiceState from, ServiceState to) const {
  const double t_from = state_time(from);
  const double t_to = state_time(to);
  ensure(t_from >= 0 && t_to >= 0, Errc::invalid_state,
         strutil::cat(uid_, ": duration over unvisited states ",
                      to_string(from), " -> ", to_string(to)));
  return t_to - t_from;
}

}  // namespace ripple::core
