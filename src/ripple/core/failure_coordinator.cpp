#include "ripple/core/failure_coordinator.hpp"

#include <algorithm>
#include <limits>

#include "ripple/common/strutil.hpp"
#include "ripple/core/session.hpp"

namespace ripple::core {

namespace {

using sim::FailureKind;

/// Splits a "zoneA|zoneB" link target.
std::pair<std::string, std::string> split_pair(const std::string& target) {
  const auto bar = target.find('|');
  if (bar == std::string::npos) return {target, ""};
  return {target.substr(0, bar), target.substr(bar + 1)};
}

}  // namespace

FailureCoordinator::FailureCoordinator(Session& session)
    : session_(session),
      injector_(session.runtime().loop(),
                session.runtime().rng().fork("failures")),
      log_(session.runtime().make_logger("failures")) {
  injector_.on(FailureKind::node_crash,
               [this](const sim::FailureEvent& event) {
                 on_node_crash(event.target);
               });
  injector_.on(FailureKind::node_restore,
               [this](const sim::FailureEvent& event) {
                 on_node_restore(event.target);
               });
  injector_.on(FailureKind::pilot_preempt,
               [this](const sim::FailureEvent& event) {
                 on_pilot_preempt(event.target);
               });
  injector_.on(FailureKind::slow_node,
               [this](const sim::FailureEvent& event) {
                 on_slow_node(event.target, event.magnitude);
               });
  injector_.on(FailureKind::node_normal,
               [this](const sim::FailureEvent& event) {
                 on_node_normal(event.target);
               });
  injector_.on(FailureKind::link_down,
               [this](const sim::FailureEvent& event) {
                 on_link_down(event.target);
               });
  injector_.on(FailureKind::link_up, [this](const sim::FailureEvent& event) {
    on_link_up(event.target);
  });
  injector_.on(FailureKind::store_crash,
               [this](const sim::FailureEvent& event) {
                 on_store_crash(event.target);
               });
  injector_.on(FailureKind::store_restore,
               [this](const sim::FailureEvent& event) {
                 on_store_restore(event.target);
               });
}

// ---------------------------------------------------------------------------
// Arming helpers
// ---------------------------------------------------------------------------

void FailureCoordinator::arm_node_crashes(
    const std::string& cluster, sim::FailureInjector::Schedule schedule) {
  platform::Cluster& target = session_.cluster(cluster);
  std::vector<std::string> nodes;
  nodes.reserve(target.node_count());
  for (std::size_t i = 0; i < target.node_count(); ++i) {
    nodes.push_back(target.node(i).id());
  }
  injector_.arm(FailureKind::node_crash, std::move(nodes), schedule);
}

void FailureCoordinator::arm_slow_nodes(
    const std::string& cluster, sim::FailureInjector::Schedule schedule) {
  platform::Cluster& target = session_.cluster(cluster);
  std::vector<std::string> nodes;
  nodes.reserve(target.node_count());
  for (std::size_t i = 0; i < target.node_count(); ++i) {
    nodes.push_back(target.node(i).id());
  }
  injector_.arm(FailureKind::slow_node, std::move(nodes), schedule);
}

void FailureCoordinator::arm_pilot_preemptions(
    sim::FailureInjector::Schedule schedule) {
  injector_.arm(FailureKind::pilot_preempt, session_.pilot_uids(), schedule);
}

void FailureCoordinator::arm_link_flaps(
    sim::FailureInjector::Schedule schedule) {
  const std::vector<std::string> names = session_.cluster_names();
  std::vector<std::string> pairs;
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      pairs.push_back(strutil::cat(names[i], "|", names[j]));
    }
  }
  injector_.arm(FailureKind::link_down, std::move(pairs), schedule);
}

void FailureCoordinator::arm_store_crashes(
    std::vector<std::string> zones, sim::FailureInjector::Schedule schedule) {
  injector_.arm(FailureKind::store_crash, std::move(zones), schedule);
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

platform::Node* FailureCoordinator::find_node(const std::string& node_id) {
  for (const std::string& name : session_.cluster_names()) {
    platform::Node* node = session_.cluster(name).find_node(node_id);
    if (node != nullptr) return node;
  }
  return nullptr;
}

std::vector<std::string> FailureCoordinator::pilots_of(
    const platform::Node& node) const {
  std::vector<std::string> owners;
  auto& session = const_cast<Session&>(session_);
  for (const std::string& uid : session.pilot_uids()) {
    Pilot& pilot = session.pilot(uid);
    if (is_terminal(pilot.state())) continue;
    const auto& nodes = pilot.nodes();
    if (std::find(nodes.begin(), nodes.end(), &node) != nodes.end()) {
      owners.push_back(uid);
    }
  }
  return owners;
}

void FailureCoordinator::trace_fault(const char* name,
                                     const std::string& target,
                                     bool repair) {
  session_.counters().add(repair ? "fault.repaired" : "fault.injected");
  if (session_.tracer().enabled()) {
    session_.tracer().instant(name, "fault", target, session_.now());
  }
}

// ---------------------------------------------------------------------------
// Event reactions
// ---------------------------------------------------------------------------

void FailureCoordinator::on_node_crash(const std::string& node_id) {
  platform::Node* node = find_node(node_id);
  if (node == nullptr || !node->alive()) return;
  log_.info(strutil::cat("node ", node_id, " crashed"));
  trace_fault("node-crash", node_id, /*repair=*/false);
  for (const std::string& name : session_.cluster_names()) {
    if (session_.cluster(name).find_node(node_id) != nullptr) {
      session_.cluster(name).fail_node(*node);
      break;
    }
  }
  session_.tasks().handle_node_failure(*node);
}

void FailureCoordinator::on_node_restore(const std::string& node_id) {
  platform::Node* node = find_node(node_id);
  if (node == nullptr || node->alive()) return;
  log_.info(strutil::cat("node ", node_id, " restored"));
  trace_fault("node-restore", node_id, /*repair=*/true);
  for (const std::string& name : session_.cluster_names()) {
    if (session_.cluster(name).find_node(node_id) != nullptr) {
      session_.cluster(name).restore_node(*node);
      break;
    }
  }
  // The rejoined capacity is offered to the owning pilot's queue now
  // rather than on the next grant/release event.
  for (const std::string& uid : pilots_of(*node)) {
    if (session_.scheduler().has_pilot(uid)) {
      session_.scheduler().reschedule(uid);
    }
  }
}

void FailureCoordinator::on_pilot_preempt(const std::string& pilot_uid) {
  const auto uids = session_.pilot_uids();
  if (std::find(uids.begin(), uids.end(), pilot_uid) == uids.end()) return;
  if (is_terminal(session_.pilot(pilot_uid).state())) return;
  log_.info(strutil::cat("pilot ", pilot_uid, " preempted"));
  trace_fault("pilot-preempt", pilot_uid, /*repair=*/false);
  session_.fail_pilot(pilot_uid);
}

void FailureCoordinator::on_slow_node(const std::string& node_id,
                                      double magnitude) {
  platform::Node* node = find_node(node_id);
  if (node == nullptr || !node->alive()) return;
  const double factor = magnitude > 1.0 ? magnitude : 2.0;
  log_.info(strutil::cat("node ", node_id, " slowed x",
                         strutil::format_fixed(factor, 2)));
  trace_fault("slow-node", node_id, /*repair=*/false);
  node->set_speed_factor(factor);
}

void FailureCoordinator::on_node_normal(const std::string& node_id) {
  platform::Node* node = find_node(node_id);
  if (node == nullptr) return;
  trace_fault("node-normal", node_id, /*repair=*/true);
  node->set_speed_factor(1.0);
}

void FailureCoordinator::on_link_down(const std::string& pair) {
  const auto [a, b] = split_pair(pair);
  if (a.empty() || b.empty()) return;
  log_.info(strutil::cat("link ", a, " <-> ", b, " down"));
  trace_fault("link-down", pair, /*repair=*/false);
  session_.data().engine().fail_link(a, b);
}

void FailureCoordinator::on_link_up(const std::string& pair) {
  const auto [a, b] = split_pair(pair);
  if (a.empty() || b.empty()) return;
  log_.info(strutil::cat("link ", a, " <-> ", b, " up"));
  trace_fault("link-up", pair, /*repair=*/true);
  session_.data().engine().restore_link(a, b);
}

void FailureCoordinator::on_store_crash(const std::string& zone) {
  const double capacity = session_.data().catalog().store(zone).capacity;
  failed_store_capacity_[zone] = capacity;
  log_.info(strutil::cat("store ", zone, " crashed"));
  trace_fault("store-crash", zone, /*repair=*/false);
  session_.data().handle_store_failure(zone);
}

void FailureCoordinator::on_store_restore(const std::string& zone) {
  const auto it = failed_store_capacity_.find(zone);
  if (it == failed_store_capacity_.end()) return;
  const double capacity = it->second;
  failed_store_capacity_.erase(it);
  log_.info(strutil::cat("store ", zone, " restored"));
  trace_fault("store-restore", zone, /*repair=*/true);
  if (capacity < std::numeric_limits<double>::infinity()) {
    session_.data().add_store(zone, capacity);
  }
}

}  // namespace ripple::core
