#pragma once

/// \file task_manager.hpp
/// The TaskManager: stateful task lifecycle management.
///
/// Drives each task through CREATED -> (WAITING) -> (STAGING_INPUT) ->
/// SCHEDULING -> SCHEDULED -> LAUNCHING -> RUNNING -> (STAGING_OUTPUT)
/// -> DONE, honouring task dependencies and service readiness relations
/// ("services often have to be started before any computing task",
/// paper section III). Data staging goes through the DataManager.
///
/// Failure is first-class: a node crash or pilot preemption interrupts
/// the placed attempt (handle_node_failure / handle_pilot_loss) and the
/// task re-enters SCHEDULING after an exponential backoff with jitter,
/// up to RestartPolicy::max_restarts attempts. Every launched attempt
/// carries an epoch; callbacks from a dead attempt (the uncancellable
/// payload completion of a crashed incarnation, a stale grant) compare
/// epochs on entry and drop themselves. The same guard powers straggler
/// mitigation: with speculation enabled, a task RUNNING for longer than
/// its expected duration times SpeculationPolicy::latency_multiple gets
/// a duplicate attempt on another slot — the first finisher wins and
/// the loser is cancelled.

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ripple/common/hash.hpp"
#include "ripple/core/data_manager.hpp"
#include "ripple/core/descriptions.hpp"
#include "ripple/core/entities.hpp"
#include "ripple/core/executor.hpp"
#include "ripple/core/runtime.hpp"
#include "ripple/core/scheduler.hpp"
#include "ripple/core/service_manager.hpp"

namespace ripple::core {

class TaskManager {
 public:
  /// Re-placement policy for tasks interrupted by failures.
  struct RestartPolicy {
    int max_restarts = 0;             ///< 0 = fail-stop (legacy behavior)
    sim::Duration backoff = 1.0;      ///< first restart delay
    double multiplier = 2.0;          ///< exponential growth per restart
    sim::Duration max_backoff = 60.0;
    bool jitter = true;               ///< x uniform[0.5, 1.5), seeded
  };

  /// Speculative-duplicate policy for stragglers.
  struct SpeculationPolicy {
    bool enabled = false;
    /// Duplicate once RUNNING exceeds expected duration x this.
    double latency_multiple = 3.0;
    sim::Duration min_delay = 1.0;
  };

  TaskManager(Runtime& runtime, Scheduler& scheduler, Executor& executor,
              DataManager& data, ServiceManager& services);

  void set_restart_policy(RestartPolicy policy) noexcept {
    restart_policy_ = policy;
  }
  [[nodiscard]] const RestartPolicy& restart_policy() const noexcept {
    return restart_policy_;
  }
  void set_speculation(SpeculationPolicy policy) noexcept {
    speculation_ = policy;
  }

  /// A node crashed: every attempt placed on it is interrupted and the
  /// task re-placed on its pilot per the restart policy (slots died
  /// with the node; queued requests simply avoid it via the capacity
  /// index). Returns the number of tasks interrupted.
  std::size_t handle_node_failure(const platform::Node& node);

  /// A pilot was preempted (its scheduler entry is already gone): every
  /// non-terminal task bound to it moves to the first surviving pilot
  /// that fits, re-entering the queue per the restart policy; with no
  /// fitting survivor the task fails. Returns tasks re-bound.
  std::size_t handle_pilot_loss(const std::string& pilot_uid,
                                const std::vector<Pilot*>& survivors);

  [[nodiscard]] std::uint64_t restarts_total() const noexcept {
    return restarts_total_;
  }
  [[nodiscard]] std::uint64_t speculations() const noexcept {
    return speculations_;
  }
  [[nodiscard]] std::uint64_t speculation_wins() const noexcept {
    return speculation_wins_;
  }

  /// Ordered "t uid event" lines for every restart/speculation decision
  /// — the failure-determinism oracle, FNV-fingerprinted.
  [[nodiscard]] const std::vector<std::string>& recovery_log()
      const noexcept {
    return recovery_log_;
  }
  [[nodiscard]] std::uint64_t recovery_log_hash() const noexcept {
    return recovery_hash_;
  }

  /// Submits one task into `pilot`; returns its uid. Dependencies named
  /// in the description must already exist.
  std::string submit(Pilot& pilot, TaskDescription desc);

  /// Locality-aware submission: places the task on whichever candidate
  /// pilot minimizes the bytes its stage-in datasets must move
  /// (data::PlacementAdvisor ranking; ties keep caller order, so
  /// data-less tasks go to the first candidate).
  std::string submit_any(const std::vector<Pilot*>& candidates,
                         TaskDescription desc);

  /// Submits a batch; returns uids in order. Tasks that are immediately
  /// runnable (no pending dependency, no stage-in) enter the scheduler
  /// through one batch submit_all pass — priorities are enacted across
  /// the whole batch and the pilot's queue is scanned once, not N
  /// times. Tasks within a batch may depend on each other.
  std::vector<std::string> submit_all(Pilot& pilot,
                                      std::vector<TaskDescription> descs);

  [[nodiscard]] const Task& get(const std::string& uid) const;
  [[nodiscard]] Task& get_mutable(const std::string& uid);
  [[nodiscard]] bool exists(const std::string& uid) const;
  [[nodiscard]] std::vector<std::string> uids() const;
  [[nodiscard]] std::size_t count_in_state(TaskState state) const;

  /// Cancels a task that has not yet been placed (waiting/staging/
  /// queued). Returns false once the task holds resources.
  bool cancel(const std::string& uid);

  /// Fires cb(all_done) when every listed task is terminal; `all_done`
  /// is true iff all of them finished in DONE.
  void when_done(std::vector<std::string> uids,
                 std::function<void(bool all_done)> on_done);

 private:
  struct Active {
    std::unique_ptr<Task> task;
    Pilot* pilot = nullptr;
    platform::Node* node = nullptr;  ///< placement, set on grant
    std::unique_ptr<TaskPayload> payload;
    std::unique_ptr<ExecutionContext> ctx;
    bool slot_held = false;
    /// Stage-in still in flight. Staging overlaps the scheduler queue
    /// wait: the task enters SCHEDULING immediately and launch is gated
    /// on both the grant and this flag clearing.
    bool stage_in_pending = false;
    /// The in-flight staging batch (overlapped stage-in, then reused
    /// for stage-out), cancelled with the task so abandoned transfers
    /// stop consuming link bandwidth.
    DataManager::BatchHandle stage_batch;
    /// Inputs pinned in the pilot's zone from stage-in completion until
    /// the payload finishes reading them — store pressure while the
    /// task waits for its grant must not evict what was just staged.
    std::vector<std::string> input_pins;
    std::string input_pin_zone;
    /// Attempt generation. Bumped when an attempt is interrupted (node
    /// crash, pilot loss) or decided (speculation winner); callbacks
    /// capture the epoch they were created under and drop themselves
    /// on mismatch — payload completions cannot be cancelled.
    std::uint64_t epoch = 0;
    int restarts = 0;
    sim::EventLoop::TimerHandle restart_timer{};
    /// Speculative duplicate attempt (straggler mitigation).
    sim::EventLoop::TimerHandle spec_timer{};
    bool spec_queued = false;  ///< duplicate request waiting at scheduler
    bool spec_slot_held = false;
    platform::Slot spec_slot;
    platform::Node* spec_node = nullptr;
    std::unique_ptr<ExecutionContext> spec_ctx;
    std::unique_ptr<TaskPayload> spec_payload;
    /// Tracer handles (0 while closed or tracing disabled): the task's
    /// root span plus the open phase span of the current attempt —
    /// queue wait, stage-in/out, run, recovery backoff. Restarts close
    /// and re-open phases, so a restarted task shows every attempt.
    metrics::SpanId trace_task = 0;
    metrics::SpanId trace_queue = 0;
    metrics::SpanId trace_stage = 0;
    metrics::SpanId trace_run = 0;
    metrics::SpanId trace_recover = 0;
  };

  struct DoneWatcher {
    std::vector<std::string> uids;
    std::function<void(bool)> on_done;
  };

  enum class Readiness { ready, pending, broken };

  [[nodiscard]] Readiness readiness(const Active& active,
                                    std::string* blocker) const;

  /// Validates a description and registers the task; the caller decides
  /// when (and how) evaluation happens.
  std::string create_task(Pilot& pilot, TaskDescription desc);

  /// When `batch` is non-null, tasks that are ready to schedule with no
  /// stage-in are collected there instead of being submitted one by one.
  void evaluate(const std::string& uid,
                std::vector<std::string>* batch = nullptr);
  void schedule_batch(Pilot& pilot, const std::vector<std::string>& uids);
  [[nodiscard]] ScheduleRequest make_request(const std::string& uid,
                                             Active& active);
  void to_staging_in(const std::string& uid);
  void to_scheduling(const std::string& uid);
  /// Starts (or restarts) the overlapped stage-in batch for `uid`.
  void begin_stage_in(const std::string& uid, Active& active);
  void on_granted(const std::string& uid, std::uint64_t epoch,
                  const std::string& pilot_uid, platform::Slot slot,
                  platform::Node* node);
  /// Slot held and inputs local: transition to LAUNCHING and start.
  void begin_launch(const std::string& uid);
  void on_launched(const std::string& uid, std::uint64_t epoch);
  void on_payload_done(const std::string& uid, std::uint64_t epoch,
                       json::Value result, bool from_spec);
  void on_payload_failed(const std::string& uid, std::uint64_t epoch,
                         const std::string& error, bool from_spec);
  void to_staging_out(const std::string& uid);
  void finish(const std::string& uid);
  void fail_task(const std::string& uid, const std::string& error);
  /// Tears down the current attempt (epoch bump, slot/pins/staging
  /// released) and either re-queues the task after backoff or fails it
  /// once the restart budget is spent. `pilot_alive` gates scheduler
  /// interactions (a preempted pilot is already deregistered);
  /// `replacement` re-binds the task first when non-null.
  void interrupt_task(const std::string& uid, const std::string& reason,
                      Pilot* replacement, bool pilot_alive);
  void resume_restart(const std::string& uid, std::uint64_t epoch);
  /// Arms / fires / settles the speculative duplicate.
  void maybe_speculate(const std::string& uid, std::uint64_t epoch);
  void on_spec_granted(const std::string& uid, std::uint64_t epoch,
                       const std::string& pilot_uid, platform::Slot slot,
                       platform::Node* node);
  void on_spec_launched(const std::string& uid, std::uint64_t epoch);
  void cancel_speculation(Active& active, bool pilot_alive);
  void record_recovery(const std::string& uid, const std::string& event);
  /// Closes every open phase span of the current attempt (teardown on
  /// interrupt/finish/fail); no-op while tracing is disabled.
  void close_phase_spans(Active& active);
  /// Closes the task's root span with a terminal-state annotation.
  void close_task_span(Active& active, const char* state);
  void release_slot(Active& active);
  void release_input_pins(Active& active);
  void set_state(Active& active, TaskState state);
  void recheck_waiting();
  void recheck_watchers();

  [[nodiscard]] Active& active_for(const std::string& uid);
  [[nodiscard]] const Active& active_for(const std::string& uid) const;

  Runtime& runtime_;
  Scheduler& scheduler_;
  Executor& executor_;
  DataManager& data_;
  ServiceManager& services_;
  common::Logger log_;
  std::map<std::string, Active> tasks_;
  std::set<std::string> waiting_;
  std::vector<DoneWatcher> watchers_;
  RestartPolicy restart_policy_;
  SpeculationPolicy speculation_;
  /// Dedicated stream for backoff jitter: restart delays must not
  /// perturb (or be perturbed by) other components' draws.
  common::Rng restart_rng_;
  std::uint64_t restarts_total_ = 0;
  std::uint64_t speculations_ = 0;
  std::uint64_t speculation_wins_ = 0;
  std::vector<std::string> recovery_log_;
  std::uint64_t recovery_hash_ = common::kFnvOffsetBasis;
};

}  // namespace ripple::core
