#pragma once

/// \file task_manager.hpp
/// The TaskManager: stateful task lifecycle management.
///
/// Drives each task through CREATED -> (WAITING) -> (STAGING_INPUT) ->
/// SCHEDULING -> SCHEDULED -> LAUNCHING -> RUNNING -> (STAGING_OUTPUT)
/// -> DONE, honouring task dependencies and service readiness relations
/// ("services often have to be started before any computing task",
/// paper section III). Data staging goes through the DataManager.

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ripple/core/data_manager.hpp"
#include "ripple/core/descriptions.hpp"
#include "ripple/core/entities.hpp"
#include "ripple/core/executor.hpp"
#include "ripple/core/runtime.hpp"
#include "ripple/core/scheduler.hpp"
#include "ripple/core/service_manager.hpp"

namespace ripple::core {

class TaskManager {
 public:
  TaskManager(Runtime& runtime, Scheduler& scheduler, Executor& executor,
              DataManager& data, ServiceManager& services);

  /// Submits one task into `pilot`; returns its uid. Dependencies named
  /// in the description must already exist.
  std::string submit(Pilot& pilot, TaskDescription desc);

  /// Locality-aware submission: places the task on whichever candidate
  /// pilot minimizes the bytes its stage-in datasets must move
  /// (data::PlacementAdvisor ranking; ties keep caller order, so
  /// data-less tasks go to the first candidate).
  std::string submit_any(const std::vector<Pilot*>& candidates,
                         TaskDescription desc);

  /// Submits a batch; returns uids in order. Tasks that are immediately
  /// runnable (no pending dependency, no stage-in) enter the scheduler
  /// through one batch submit_all pass — priorities are enacted across
  /// the whole batch and the pilot's queue is scanned once, not N
  /// times. Tasks within a batch may depend on each other.
  std::vector<std::string> submit_all(Pilot& pilot,
                                      std::vector<TaskDescription> descs);

  [[nodiscard]] const Task& get(const std::string& uid) const;
  [[nodiscard]] Task& get_mutable(const std::string& uid);
  [[nodiscard]] bool exists(const std::string& uid) const;
  [[nodiscard]] std::vector<std::string> uids() const;
  [[nodiscard]] std::size_t count_in_state(TaskState state) const;

  /// Cancels a task that has not yet been placed (waiting/staging/
  /// queued). Returns false once the task holds resources.
  bool cancel(const std::string& uid);

  /// Fires cb(all_done) when every listed task is terminal; `all_done`
  /// is true iff all of them finished in DONE.
  void when_done(std::vector<std::string> uids,
                 std::function<void(bool all_done)> on_done);

 private:
  struct Active {
    std::unique_ptr<Task> task;
    Pilot* pilot = nullptr;
    platform::Node* node = nullptr;  ///< placement, set on grant
    std::unique_ptr<TaskPayload> payload;
    std::unique_ptr<ExecutionContext> ctx;
    bool slot_held = false;
    /// Stage-in still in flight. Staging overlaps the scheduler queue
    /// wait: the task enters SCHEDULING immediately and launch is gated
    /// on both the grant and this flag clearing.
    bool stage_in_pending = false;
    /// The in-flight staging batch (overlapped stage-in, then reused
    /// for stage-out), cancelled with the task so abandoned transfers
    /// stop consuming link bandwidth.
    DataManager::BatchHandle stage_batch;
    /// Inputs pinned in the pilot's zone from stage-in completion until
    /// the payload finishes reading them — store pressure while the
    /// task waits for its grant must not evict what was just staged.
    std::vector<std::string> input_pins;
    std::string input_pin_zone;
  };

  struct DoneWatcher {
    std::vector<std::string> uids;
    std::function<void(bool)> on_done;
  };

  enum class Readiness { ready, pending, broken };

  [[nodiscard]] Readiness readiness(const Active& active,
                                    std::string* blocker) const;

  /// Validates a description and registers the task; the caller decides
  /// when (and how) evaluation happens.
  std::string create_task(Pilot& pilot, TaskDescription desc);

  /// When `batch` is non-null, tasks that are ready to schedule with no
  /// stage-in are collected there instead of being submitted one by one.
  void evaluate(const std::string& uid,
                std::vector<std::string>* batch = nullptr);
  void schedule_batch(Pilot& pilot, const std::vector<std::string>& uids);
  [[nodiscard]] ScheduleRequest make_request(const std::string& uid,
                                             Active& active);
  void to_staging_in(const std::string& uid);
  void to_scheduling(const std::string& uid);
  void on_granted(const std::string& uid, platform::Slot slot,
                  platform::Node* node);
  /// Slot held and inputs local: transition to LAUNCHING and start.
  void begin_launch(const std::string& uid);
  void on_launched(const std::string& uid);
  void on_payload_done(const std::string& uid, json::Value result);
  void to_staging_out(const std::string& uid);
  void finish(const std::string& uid);
  void fail_task(const std::string& uid, const std::string& error);
  void release_slot(Active& active);
  void release_input_pins(Active& active);
  void set_state(Active& active, TaskState state);
  void recheck_waiting();
  void recheck_watchers();

  [[nodiscard]] Active& active_for(const std::string& uid);
  [[nodiscard]] const Active& active_for(const std::string& uid) const;

  Runtime& runtime_;
  Scheduler& scheduler_;
  Executor& executor_;
  DataManager& data_;
  ServiceManager& services_;
  common::Logger log_;
  std::map<std::string, Active> tasks_;
  std::set<std::string> waiting_;
  std::vector<DoneWatcher> watchers_;
};

}  // namespace ripple::core
