#pragma once

/// \file runtime.hpp
/// The shared runtime context: event loop, network, router, pub/sub bus,
/// metrics and the master RNG. One Runtime exists per Session; every
/// component receives a reference.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ripple/common/ids.hpp"
#include "ripple/common/logging.hpp"
#include "ripple/common/random.hpp"
#include "ripple/metrics/counters.hpp"
#include "ripple/metrics/registry.hpp"
#include "ripple/metrics/timeline.hpp"
#include "ripple/metrics/tracer.hpp"
#include "ripple/msg/pubsub.hpp"
#include "ripple/msg/router.hpp"
#include "ripple/sim/event_loop.hpp"
#include "ripple/sim/network.hpp"

namespace ripple::core {

class Runtime {
 public:
  explicit Runtime(std::uint64_t seed);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] sim::EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] sim::Network& network() noexcept { return network_; }
  [[nodiscard]] msg::Router& router() noexcept { return router_; }
  [[nodiscard]] msg::PubSub& pubsub() noexcept { return pubsub_; }
  [[nodiscard]] metrics::Registry& metrics() noexcept { return metrics_; }
  [[nodiscard]] metrics::Timeline& timeline() noexcept { return timeline_; }
  /// Runtime-wide span tracer; off by default (Session::enable_tracing).
  [[nodiscard]] metrics::Tracer& tracer() noexcept { return tracer_; }
  /// Runtime-wide counters/gauges; off by default alongside the tracer.
  [[nodiscard]] metrics::Counters& counters() noexcept { return counters_; }
  [[nodiscard]] common::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// A logger stamped with simulation time.
  [[nodiscard]] common::Logger make_logger(const std::string& name);

  /// Session-local uid generation. Entity uids seed per-entity RNG
  /// streams, so uids must be session-scoped (not process-global) for
  /// same-seed runs to be bit-identical.
  [[nodiscard]] std::string make_uid(const std::string& prefix) {
    return ids_.next(prefix);
  }

  /// Publishes an entity state transition on the "state" topic; the
  /// Timeline (and any user subscriber) receives it asynchronously.
  void publish_state(const std::string& kind, const std::string& uid,
                     const std::string& state);

  /// Live endpoint directory, updated *synchronously* by the
  /// ServiceManager as services enter/leave RUNNING (the matching
  /// "endpoints" pub/sub event is delivered asynchronously). Late
  /// subscribers — e.g. watch-mode inference clients that start after
  /// a replica came up — reconcile against this snapshot first, then
  /// follow the events; without it, an up/down transition between
  /// snapshot and subscription would be lost forever.
  void register_endpoint(const std::string& name,
                         const std::string& endpoint);
  void deregister_endpoint(const std::string& name,
                           const std::string& endpoint);
  [[nodiscard]] std::vector<std::string> endpoints_of(
      const std::string& name) const;

 private:
  std::uint64_t seed_;
  common::IdGenerator ids_;
  common::Rng rng_;
  sim::EventLoop loop_;
  sim::Network network_;
  msg::Router router_;
  msg::PubSub pubsub_;
  metrics::Registry metrics_;
  metrics::Timeline timeline_;
  metrics::Tracer tracer_;
  metrics::Counters counters_;
  std::map<std::string, std::set<std::string>> endpoint_directory_;
};

}  // namespace ripple::core
