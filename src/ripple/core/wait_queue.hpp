#pragma once

/// \file wait_queue.hpp
/// Priority-ordered waiting queue for the scheduler.
///
/// A balanced-tree indexed priority queue keyed by (priority desc,
/// sequence asc) — the scheduler's grant order — with a uid side index
/// so cancel() finds its entry without scanning. push, erase and
/// pop-best are all O(log N); backfill scans iterate entries in grant
/// order without mutating the queue.
///
/// Cross-tenant ordering audit (multi-tenant runtime). Sequences are
/// drawn from ONE scheduler-global counter (`Scheduler::next_sequence_`)
/// regardless of which tenant/session submitted, and `enqueued_at`
/// records the global sim-time of submission. Equal-priority requests
/// from different tenants therefore tie-break in global
/// (time, sequence) submission order — never per-session insertion
/// order — and the order is bit-identical across reruns and shard
/// counts (the pass only *plans* per shard; grants commit serially in
/// merged order). Pinned by TenantsTest.CrossTenantTieBreak in
/// tests/test_tenants.cpp. Weighted fair-share (DRF-style) is layered
/// ABOVE this queue in Scheduler::try_schedule_fair: it re-orders the
/// *scan* by (priority, dominant share, time, sequence) but never
/// mutates the keys here, so disabling fair-share restores this queue's
/// native order exactly.

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "ripple/core/scheduler_request.hpp"

namespace ripple::core {

class WaitQueue {
 public:
  /// Grant-order key: higher priority first, then submission order.
  struct Key {
    int priority = 0;
    std::uint64_t sequence = 0;

    bool operator<(const Key& other) const noexcept {
      if (priority != other.priority) return priority > other.priority;
      return sequence < other.sequence;
    }
  };

  struct Entry {
    ScheduleRequest request;
    double enqueued_at = 0.0;
  };

  using Map = std::map<Key, Entry>;
  using iterator = Map::iterator;
  using const_iterator = Map::const_iterator;

  /// Inserts in grant order. Throws invalid_state when the uid is
  /// already queued (sequences are unique by construction).
  void push(Key key, Entry entry);

  /// Removes the entry for `uid`; false when not queued.
  bool erase_uid(const std::string& uid);

  /// Removes the entry an iterator points at; returns the successor.
  iterator erase(iterator position);

  [[nodiscard]] iterator find(Key key) { return queue_.find(key); }

  [[nodiscard]] bool contains_uid(const std::string& uid) const {
    return by_uid_.count(uid) != 0;
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }

  [[nodiscard]] iterator begin() noexcept { return queue_.begin(); }
  [[nodiscard]] iterator end() noexcept { return queue_.end(); }
  [[nodiscard]] const_iterator begin() const noexcept {
    return queue_.begin();
  }
  [[nodiscard]] const_iterator end() const noexcept { return queue_.end(); }

 private:
  Map queue_;
  std::unordered_map<std::string, Key> by_uid_;
};

}  // namespace ripple::core
