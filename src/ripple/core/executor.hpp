#pragma once

/// \file executor.hpp
/// Execution abstractions: task payloads, service programs, and the
/// Executor that instantiates and launches them.
///
/// A TaskPayload is what a task *does* once RUNNING; a ServiceProgram is
/// the long-lived body of a service task (the paper's Service Base
/// Class), with an init phase (model loading), an RPC surface and an
/// outstanding-request count used for draining. Both are produced by
/// name-keyed registries so workloads plug in without the core knowing
/// about ML specifics — the ml module registers its payloads/programs
/// through ml::install().

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ripple/core/descriptions.hpp"
#include "ripple/core/runtime.hpp"
#include "ripple/msg/rpc.hpp"
#include "ripple/platform/cluster.hpp"

namespace ripple::core {

class DataManager;

/// Everything a payload or program may touch at run time.
struct ExecutionContext {
  Runtime* runtime = nullptr;
  DataManager* data = nullptr;  ///< set for task payloads
  sim::HostId host;          ///< host the unit was placed on
  std::string uid;           ///< owning task/service uid
  json::Value config;        ///< payload/program configuration
  common::Rng rng;           ///< forked, unit-private stream
  common::Logger log;

  /// Execution-time multiplier of the hosting node at launch (> 1 =
  /// slower — the straggler model). Modeled durations are scaled by it.
  double speed_factor = 1.0;

  [[nodiscard]] sim::EventLoop& loop() const { return runtime->loop(); }
  [[nodiscard]] msg::Router& router() const { return runtime->router(); }
  [[nodiscard]] metrics::Registry& metrics() const {
    return runtime->metrics();
  }
};

/// The body of a task; run() must call exactly one of done/fail,
/// possibly asynchronously.
class TaskPayload {
 public:
  virtual ~TaskPayload() = default;

  using DoneFn = std::function<void(json::Value result)>;
  using FailFn = std::function<void(std::string error)>;

  virtual void run(ExecutionContext& ctx, DoneFn done, FailFn fail) = 0;
};

/// The body of a service; lives from INITIALIZING to STOPPED.
class ServiceProgram {
 public:
  virtual ~ServiceProgram() = default;

  using DoneFn = std::function<void()>;
  using FailFn = std::function<void(std::string error)>;

  /// Model loading / warm-up. Must call done or fail exactly once.
  /// Programs honour config {"preloaded": true} by completing
  /// immediately (remote persistent deployments).
  virtual void init(ExecutionContext& ctx, DoneFn done, FailFn fail) = 0;

  /// Registers RPC methods; called after init, before publication.
  virtual void bind(msg::RpcServer& server) = 0;

  /// Requests in flight (queued + executing); used for draining.
  [[nodiscard]] virtual std::size_t outstanding() const { return 0; }

  /// Appends the request latencies (seconds) the program observed in
  /// its trailing window to `out`. Programs without a latency stream
  /// append nothing. The ServiceManager pools these across a replica
  /// group into the exact windowed quantile the SLO autoscaler polls
  /// (ServiceManager::window_latency_quantile).
  virtual void collect_window_latencies(sim::SimTime now,
                                        std::vector<double>& out) const {
    (void)now;
    (void)out;
  }

  /// Implementation-defined counters exposed via the "stats" method.
  [[nodiscard]] virtual json::Value stats() const {
    return json::Value::object();
  }
};

/// Name -> factory registries. Factories receive the execution context
/// (already carrying the unit's config) at creation time.
class PayloadRegistry {
 public:
  using Factory = std::function<std::unique_ptr<TaskPayload>(
      const TaskDescription& desc)>;

  PayloadRegistry();

  void register_factory(const std::string& kind, Factory factory);
  [[nodiscard]] bool has(const std::string& kind) const;
  [[nodiscard]] std::unique_ptr<TaskPayload> create(
      const TaskDescription& desc) const;

 private:
  std::map<std::string, Factory> factories_;
};

class ProgramRegistry {
 public:
  using Factory = std::function<std::unique_ptr<ServiceProgram>(
      const ServiceDescription& desc)>;

  void register_factory(const std::string& name, Factory factory);
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::unique_ptr<ServiceProgram> create(
      const ServiceDescription& desc) const;

 private:
  std::map<std::string, Factory> factories_;
};

/// Named real-compute functions runnable by the built-in "function"
/// payload kind: payload = {"fn": "<name>", "args": {...}}. The function
/// executes synchronously at RUNNING time (real C++ work); simulated
/// execution time still comes from the task's duration model.
class FunctionRegistry {
 public:
  using Fn = std::function<json::Value(ExecutionContext& ctx,
                                       const json::Value& args)>;

  void register_fn(const std::string& name, Fn fn);
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] const Fn& get(const std::string& name) const;

 private:
  std::map<std::string, Fn> functions_;
};

/// Shared execution services used by both managers.
class Executor {
 public:
  explicit Executor(Runtime& runtime);

  [[nodiscard]] PayloadRegistry& payloads() noexcept { return payloads_; }
  [[nodiscard]] ProgramRegistry& programs() noexcept { return programs_; }
  [[nodiscard]] FunctionRegistry& functions() noexcept { return functions_; }

  /// Builds the per-unit execution context.
  [[nodiscard]] ExecutionContext make_context(const std::string& uid,
                                              sim::HostId host,
                                              json::Value config);

  /// Launches a unit executable on `cluster`; done(actual_duration)
  /// fires when the process is up. `concurrency_hint` feeds the launch
  /// contention model (instances submitted in the same wave).
  void launch(platform::Cluster& cluster, std::size_t concurrency_hint,
              std::function<void(sim::Duration)> done);

  [[nodiscard]] std::uint64_t launches() const noexcept { return launches_; }

 private:
  Runtime& runtime_;
  PayloadRegistry payloads_;
  ProgramRegistry programs_;
  FunctionRegistry functions_;
  std::uint64_t launches_ = 0;
};

/// Built-in payload: completes after a sampled duration (no real work).
class ModeledPayload final : public TaskPayload {
 public:
  explicit ModeledPayload(common::Distribution duration)
      : duration_(duration) {}

  void run(ExecutionContext& ctx, DoneFn done, FailFn fail) override;

 private:
  common::Distribution duration_;
};

}  // namespace ripple::core
