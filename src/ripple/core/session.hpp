#pragma once

/// \file session.hpp
/// The Session: Ripple's top-level, unified public API.
///
/// Mirrors the paper's execution model (Fig. 2): users submit
/// ServiceDescriptions and TaskDescriptions through one API (1); the
/// Scheduler places them (2); the Executor runs them (3); services
/// expose their APIs (4) over model capabilities (5); state information
/// flows back over dedicated channels (6). A Session owns the Runtime,
/// the platforms (clusters), the managers and all entities.
///
/// Typical use:
///   core::Session session({.seed = 7});
///   auto& delta = session.add_platform(platform::delta_profile());
///   auto& pilot = session.submit_pilot({.platform = "delta", .nodes = 4});
///   ml::install(session);                       // ML payloads/programs
///   auto svc = session.services().submit(pilot, svc_desc);
///   session.services().when_ready({svc}, [&](bool) { ... submit tasks; });
///   session.run();                              // drive to completion

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ripple/core/data_manager.hpp"
#include "ripple/core/executor.hpp"
#include "ripple/core/runtime.hpp"
#include "ripple/core/scheduler.hpp"
#include "ripple/core/service_manager.hpp"
#include "ripple/core/task_manager.hpp"
#include "ripple/platform/cluster.hpp"
#include "ripple/platform/profiles.hpp"

namespace ripple::core {

class FailureCoordinator;

struct SessionConfig {
  std::uint64_t seed = 42;
  SchedulerPolicy scheduler_policy = SchedulerPolicy::backfill;
  /// Enables runtime-wide span tracing + counters at construction
  /// (equivalent to calling enable_tracing()). Off by default.
  bool tracing = false;
  /// Sim-time interval between counter/gauge snapshots when tracing.
  double gauge_tick = 1.0;
};

class Session {
 public:
  explicit Session(SessionConfig config = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // --- platforms and pilots ---

  /// Instantiates a platform from a profile; wires network links to all
  /// previously added platforms.
  platform::Cluster& add_platform(const platform::PlatformProfile& profile);

  [[nodiscard]] platform::Cluster& cluster(const std::string& name);
  [[nodiscard]] bool has_cluster(const std::string& name) const;

  /// Acquires `desc.nodes` nodes on the named platform; the pilot
  /// becomes ACTIVE asynchronously. Returns the pilot.
  Pilot& submit_pilot(const PilotDescription& desc);

  [[nodiscard]] Pilot& pilot(const std::string& uid);
  [[nodiscard]] std::vector<std::string> pilot_uids() const;

  /// Ends a pilot: releases its nodes back to the cluster.
  void close_pilot(const std::string& uid);

  /// The pilot was lost (spot preemption, allocation kill): its
  /// scheduler entry is removed, nodes returned, state set to FAILED,
  /// and every bound task re-bound to a surviving pilot (or failed when
  /// none fits). Tolerant of already-terminal pilots (no-op).
  void fail_pilot(const std::string& uid);

  /// Platform names in deterministic (sorted) order.
  [[nodiscard]] std::vector<std::string> cluster_names() const;

  // --- multi-tenancy --------------------------------------------------------

  /// Registers (or updates) `tenant`'s fair-share weight, in both the
  /// scheduler (DRF-style dominant-share arbitration between queued
  /// requests) and the transfer engine (weighted link bandwidth
  /// shares). Registering the first weight switches the scheduler's
  /// backfill pass to fair-share ordering; sessions that never call
  /// this keep the exact single-tenant behavior.
  void set_tenant_weight(const std::string& tenant, double weight);

  /// Caps the bytes `tenant` may hold (resident + reserved) in
  /// `zone`'s store. Over-quota reservations fail without evicting
  /// anyone else's data.
  void set_tenant_store_quota(const std::string& zone,
                              const std::string& tenant, double bytes);

  /// Caps `tenant`'s concurrently in-flight bytes per network link;
  /// excess transfers queue behind the cap (they are never dropped,
  /// and a tenant with nothing in flight is always admitted).
  void set_tenant_link_quota(const std::string& tenant, double bytes);

  // --- components ---

  [[nodiscard]] Runtime& runtime() noexcept { return runtime_; }
  [[nodiscard]] sim::EventLoop& loop() noexcept { return runtime_.loop(); }
  [[nodiscard]] Scheduler& scheduler() noexcept { return *scheduler_; }
  [[nodiscard]] Executor& executor() noexcept { return *executor_; }
  [[nodiscard]] DataManager& data() noexcept { return *data_; }
  [[nodiscard]] ServiceManager& services() noexcept { return *services_; }
  [[nodiscard]] TaskManager& tasks() noexcept { return *tasks_; }
  /// Seeded fault injection wired into this session's runtime.
  [[nodiscard]] FailureCoordinator& failures() noexcept { return *failures_; }
  [[nodiscard]] metrics::Registry& metrics() noexcept {
    return runtime_.metrics();
  }
  [[nodiscard]] metrics::Timeline& timeline() noexcept {
    return runtime_.timeline();
  }
  [[nodiscard]] metrics::Tracer& tracer() noexcept {
    return runtime_.tracer();
  }
  [[nodiscard]] metrics::Counters& counters() noexcept {
    return runtime_.counters();
  }

  /// Turns on span tracing and counter sampling for this session:
  /// enables the Tracer and Counters, registers the standard gauges
  /// (event-loop depth/events, scheduler waitqueue length, live
  /// transfers, store occupancy) and arms the sampling tick. Idempotent.
  void enable_tracing(double gauge_tick = 1.0);

  // --- driving the run ---

  /// Runs the event loop until no events remain. Returns events
  /// processed. Services with monitoring enabled must be stopped for
  /// the loop to drain (use services().stop_all()).
  std::size_t run();

  /// Runs until simulation time `deadline`.
  std::size_t run_until(sim::SimTime deadline);

  /// Current simulation time.
  [[nodiscard]] sim::SimTime now() const noexcept;

  /// Aggregate counters (entities by state, messages, events, ...).
  [[nodiscard]] json::Value summary() const;

 private:
  SessionConfig config_;
  Runtime runtime_;
  std::map<std::string, std::unique_ptr<platform::Cluster>> clusters_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<DataManager> data_;
  std::unique_ptr<ServiceManager> services_;
  std::unique_ptr<TaskManager> tasks_;
  std::unique_ptr<FailureCoordinator> failures_;
  std::map<std::string, std::unique_ptr<Pilot>> pilots_;
  common::Logger log_;
};

}  // namespace ripple::core
