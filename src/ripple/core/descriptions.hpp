#pragma once

/// \file descriptions.hpp
/// User-facing descriptions of pilots, tasks and service tasks.
///
/// These mirror RADICAL-Pilot's PilotDescription/TaskDescription plus
/// the ServiceDescription this paper adds. Descriptions are plain value
/// types validated on submission; the runtime owns the corresponding
/// stateful entities (Pilot, Task, Service).

#include <cstddef>
#include <string>
#include <vector>

#include "ripple/common/json.hpp"
#include "ripple/common/random.hpp"
#include "ripple/sim/event_loop.hpp"

namespace ripple::core {

/// Data staging directive attached to a task.
struct StagingDirective {
  enum class Action { stage_in, stage_out };
  Action action = Action::stage_in;
  std::string dataset;  ///< name registered with the DataManager

  /// stage_out only: destination zone for the produced dataset. Empty
  /// means "leave it in the pilot's zone" (registration, no transfer).
  std::string zone;

  [[nodiscard]] static StagingDirective in(std::string dataset_name) {
    return StagingDirective{Action::stage_in, std::move(dataset_name), ""};
  }
  [[nodiscard]] static StagingDirective out(std::string dataset_name,
                                            std::string dst_zone = "") {
    return StagingDirective{Action::stage_out, std::move(dataset_name),
                            std::move(dst_zone)};
  }
};

struct PilotDescription {
  std::string platform;        ///< profile/cluster name ("delta")
  std::size_t nodes = 1;
  sim::Duration walltime = 24.0 * 3600.0;

  /// Throws invalid_argument when malformed.
  void validate() const;
};

struct TaskDescription {
  std::string name = "task";

  /// Payload kind, resolved through the session's PayloadRegistry.
  /// Built-ins: "modeled" (sleeps for `duration`), "function" (runs a
  /// registered C++ callable). The ml module adds "inference_client".
  std::string kind = "modeled";

  /// Kind-specific configuration passed to the payload factory.
  json::Value payload = json::Value::object();

  std::size_t cores = 1;
  std::size_t gpus = 0;
  double mem_gb = 0.0;

  /// Execution-time model for "modeled" payloads.
  common::Distribution duration = common::Distribution::constant(1.0);

  /// Uids of tasks that must reach DONE first.
  std::vector<std::string> depends_on;

  /// Uids of services that must be RUNNING first (readiness relation,
  /// section III: "services often have to be started before any
  /// computing task").
  std::vector<std::string> requires_services;

  std::vector<StagingDirective> staging;

  /// Scheduling priority; higher runs earlier. Services default higher.
  int priority = 0;

  /// Tenant id for multi-tenant runs: threads through to the
  /// scheduler's fair-share arbitration, the catalog's per-tenant
  /// pins/quotas, and the transfer engine's weighted links. Empty
  /// (default) keeps the single-tenant behavior.
  std::string tenant;

  void validate() const;
};

struct ServiceDescription {
  std::string name = "service";

  /// Service program factory name (session ProgramRegistry). The ml
  /// module registers "inference"; tests register synthetic programs.
  std::string program = "inference";

  /// Program-specific configuration, e.g. {"model": "llama-8b"}.
  json::Value config = json::Value::object();

  std::size_t cores = 1;
  std::size_t gpus = 1;
  double mem_gb = 0.0;

  /// Abort bootstrap if the service is not RUNNING within this window.
  sim::Duration ready_timeout = 900.0;

  /// Liveness monitoring. When enabled, the running service sends
  /// periodic heartbeats to the ServiceManager, which declares the
  /// service FAILED after `heartbeat_misses` consecutive silent
  /// periods. Off by default: the recurring timers keep the event loop
  /// alive until the service is stopped.
  bool monitor = false;
  sim::Duration heartbeat_interval = 30.0;
  int heartbeat_misses = 3;

  /// Scheduling priority; defaults above tasks so services launch first.
  int priority = 100;

  /// Restart policy after liveness failure.
  bool restart_on_failure = false;
  int max_restarts = 1;

  /// Tenant id for multi-tenant runs (see TaskDescription::tenant).
  std::string tenant;

  void validate() const;
};

}  // namespace ripple::core
