#pragma once

/// \file scheduler.hpp
/// Continuous slot scheduler with service/task priority relations.
///
/// Extends RADICAL-Pilot's agent scheduler the way the paper describes:
/// "We extended the existing Scheduler to enact priority relations
/// between services and tasks". Requests are ordered by (priority desc,
/// submission order); placement is first-fit over the pilot's nodes.
/// Policy `backfill` (default, matching RADICAL-Pilot) lets smaller
/// requests overtake a blocked head-of-queue; `fifo` enforces strict
/// order — the ablation bench compares the two.
///
/// Placement is indexed, not scanned: each pilot keeps a
/// platform::CapacityIndex (segment tree over its nodes' free capacity,
/// updated incrementally on allocate/release) answering first-fit
/// queries in O(log nodes), and a WaitQueue (balanced-tree priority
/// queue with a uid index) making submit/cancel O(log waiting). Grant
/// order is identical to a linear first-fit rescan of the old
/// deque-based scheduler; only the cost changes.
///
/// Backfill can additionally be *data-aware*: a locality oracle
/// (set_locality_oracle — typically the data plane's catalog lookup,
/// threaded in from outside so core/ stays decoupled from data/) tells
/// the scheduler how many input bytes a request would still have to
/// move into the pilot's zone. Each placement pass then prefers, within
/// every priority class, requests whose inputs are already resident —
/// conservatively: when every footprint is zero the grant order is
/// bit-identical to the oracle-less scan.
///
/// Placement is *sharded* on the batch paths: submit_batch and
/// release_batch partition the touched pilots into shard groups over a
/// common::ShardExecutor (set_shard_executor; null — the default —
/// runs the identical code inline). Each shard runs ordinary placement
/// passes over its own pilots — a pilot's WaitQueue, CapacityIndex and
/// nodes are touched by exactly one shard — and buffers candidate
/// grants instead of committing them. The buffers are then merged in
/// logical (enqueue time, request sequence, shard) order and committed
/// on the calling thread: wait-time stats, the grant counter, the
/// rolling grant-order FNV fingerprint (grant_log_hash) and the
/// granted-callback posts all happen in that merged order. Request
/// sequences are globally unique, so the committed order is a pure
/// function of the per-pilot grant sets — independent of shard count
/// or thread timing; a shards=N run is bit-identical to shards=1, the
/// oracle the sharded suites and bench/ablation_shards assert. With an
/// executor attached the locality oracle must tolerate concurrent
/// const calls (the catalog residency lookup does).
///
/// The single-pilot paths (submit, submit_all, release, cancel) are
/// unchanged and never touch the executor, so every pre-existing
/// determinism suite runs the exact code it always did.
///
/// Weighted fair-share (multi-tenant arbitration). Opt-in via
/// set_tenant_weight: while any tenant weight is registered and the
/// policy is backfill, placement passes scan in
/// (priority desc, dominant share asc, enqueue time asc, sequence asc)
/// order instead of the wait queue's native (priority, sequence) —
/// DRF-style: a request's cost is its dominant resource fraction of
/// the pilot (max of cores/total, gpus/total, mem/total) divided by
/// the tenant's weight, accumulated against the tenant as grants
/// *commit*. Shares are snapshotted at pass start and only ever
/// mutated in commit_grant — serially, in merged (time, sequence,
/// shard) order — so the scan order is a pure function of committed
/// history: bit-identical across reruns and shard counts, and
/// race-free under the executor (passes only read). The wait queue's
/// keys are never touched, so clearing the weights restores the
/// native order exactly; fifo ignores fair-share (strict order is the
/// point of fifo). Fair-share takes precedence over the locality
/// oracle when both are active.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ripple/common/hash.hpp"
#include "ripple/common/shard_executor.hpp"
#include "ripple/common/statistics.hpp"
#include "ripple/core/entities.hpp"
#include "ripple/core/runtime.hpp"
#include "ripple/core/scheduler_request.hpp"
#include "ripple/core/wait_queue.hpp"
#include "ripple/platform/capacity_index.hpp"
#include "ripple/platform/node.hpp"

namespace ripple::core {

class Scheduler {
 public:
  explicit Scheduler(Runtime& runtime,
                     SchedulerPolicy policy = SchedulerPolicy::backfill);

  /// Switching policy mid-run forces a full queue rescan on the next
  /// submit (the fast path's invariants are policy-specific).
  void set_policy(SchedulerPolicy policy) noexcept;
  [[nodiscard]] SchedulerPolicy policy() const noexcept { return policy_; }

  /// Live residency lookup: bytes of `datasets` that still have to move
  /// into `zone` (0 == fully resident). Queried at placement time, so
  /// the answer tracks the catalog, not the submission-time snapshot in
  /// ScheduleRequest::input_bytes.
  using LocalityOracle = std::function<double(
      const std::vector<std::string>& datasets, const std::string& zone)>;

  /// Makes backfill data-aware (see file comment). A null oracle
  /// restores the data-blind scan.
  void set_locality_oracle(LocalityOracle oracle);
  [[nodiscard]] bool data_aware() const noexcept {
    return static_cast<bool>(oracle_);
  }

  /// Registers (or updates) a tenant's fair-share weight; weight must
  /// be > 0. The first registration activates fair-share arbitration
  /// (see file comment). Tenants submitting without a registered
  /// weight arbitrate at weight 1.
  void set_tenant_weight(const std::string& tenant, double weight);
  [[nodiscard]] bool fair_share() const noexcept {
    return !tenant_weights_.empty();
  }

  /// Cumulative weighted dominant share granted to `tenant` so far
  /// (the quantity fair-share equalizes; 0 for unknown tenants).
  [[nodiscard]] double tenant_share(const std::string& tenant) const;

  /// Registers a pilot's nodes with the scheduler.
  void add_pilot(Pilot& pilot);

  /// Drops a pilot; pending requests for it are discarded.
  void remove_pilot(const std::string& pilot_uid);

  [[nodiscard]] bool has_pilot(const std::string& pilot_uid) const noexcept {
    return pilots_.count(pilot_uid) != 0;
  }

  /// Re-runs a full placement pass after node capacity changed outside
  /// the release path (a crashed node rejoining, capacity freed by a
  /// node death). Returns the number granted.
  std::size_t reschedule(const std::string& pilot_uid);

  /// Enqueues a request against a pilot's resources. Throws capacity
  /// when the request can never fit on any node of the pilot.
  void submit(const std::string& pilot_uid, ScheduleRequest request);

  /// Enqueues a batch, then runs one placement pass over the whole
  /// queue. Unlike N submit() calls, priorities are enacted across the
  /// entire batch before any placement, and the pilot's queue is
  /// re-scanned once instead of N times. Returns the number granted
  /// during the pass.
  std::size_t submit_all(const std::string& pilot_uid,
                         std::vector<ScheduleRequest> requests);

  /// Attaches the shard executor the batch paths run their placement
  /// passes on (null — the default — keeps them inline). See the file
  /// comment for the sharding/merge contract.
  void set_shard_executor(common::ShardExecutor* executor) noexcept {
    executor_ = executor;
  }

  /// One pilot's slice of a cross-pilot batch submission.
  struct PilotBatch {
    std::string pilot_uid;
    std::vector<ScheduleRequest> requests;
  };

  /// Enqueues requests against many pilots, then runs the per-pilot
  /// placement passes sharded across the executor and commits the
  /// merged grants deterministically (see file comment). Returns the
  /// number granted.
  std::size_t submit_batch(std::vector<PilotBatch> batches);

  /// Releases granted slots across many pilots, then re-runs the
  /// per-pilot placement passes the same sharded way. Returns the
  /// number granted by the re-placement.
  std::size_t release_batch(
      const std::vector<std::pair<std::string, platform::Slot>>& slots);

  /// Rolling FNV-1a fingerprint of the committed grant order (request
  /// uid, node id, slot shape — in commit order). The parallel==serial
  /// determinism oracle: a shards=N batch run must produce the same
  /// fingerprint as shards=1 under the same seed.
  [[nodiscard]] std::uint64_t grant_log_hash() const noexcept {
    return grant_hash_;
  }

  /// True when a request of this shape could ever fit some node of the
  /// pilot (the submit-time capacity precondition). O(distinct node
  /// shapes), i.e. O(1) for homogeneous pilots.
  [[nodiscard]] bool fits_pilot(const std::string& pilot_uid,
                                std::size_t cores, std::size_t gpus,
                                double mem_gb) const;

  /// Removes a queued (not yet granted) request. Returns false if the
  /// request was already granted or is unknown.
  bool cancel(const std::string& pilot_uid, const std::string& request_uid);

  /// Returns a granted slot; wakes the queue.
  void release(const std::string& pilot_uid, const platform::Slot& slot);

  [[nodiscard]] std::size_t queue_length(const std::string& pilot_uid) const;

  /// Total queued (not yet granted) requests across all pilots — the
  /// waitqueue-length gauge sampled by metrics::Counters.
  [[nodiscard]] std::size_t waiting_total() const;

  [[nodiscard]] std::uint64_t granted_total() const noexcept {
    return granted_;
  }

  /// Distribution of queue wait times (seconds) across all grants.
  [[nodiscard]] const common::Summary& wait_times() const noexcept {
    return wait_times_;
  }

 private:
  struct PilotEntry {
    Pilot* pilot = nullptr;
    WaitQueue waiting;
    platform::CapacityIndex index;
    /// Distinct node shapes of the pilot, for O(1) can-ever-fit checks.
    std::vector<platform::NodeSpec> distinct_specs;
    /// Pilot-wide capacity totals (denominators of the DRF dominant
    /// resource fraction), summed once at add_pilot.
    std::size_t total_cores = 0;
    std::size_t total_gpus = 0;
    double total_mem = 0.0;
    /// Set when the fast-path invariant broke (fifo head cancelled,
    /// policy switched); the next submit rescans the whole queue.
    bool needs_full_scan = false;
  };

  /// A grant computed by a placement pass but not yet committed: the
  /// pilot-local state (node capacity, wait queue) is already updated;
  /// the globally ordered effects (stats, hash, callback post) happen
  /// at commit, in merge-key order.
  struct PendingGrant {
    common::MergeKey key;  ///< (enqueued_at, request sequence, shard)
    double enqueued_at = 0.0;
    std::string uid;
    std::string tenant;
    double share_cost = 0.0;  ///< weighted dominant fraction of the grant
    platform::Slot slot;
    platform::Node* node = nullptr;
    std::function<void(platform::Slot, platform::Node*)> callback;
  };
  using GrantSink = std::vector<PendingGrant>;

  void validate_fits_pilot(const PilotEntry& entry,
                           const ScheduleRequest& request) const;
  WaitQueue::Key enqueue(PilotEntry& entry, ScheduleRequest request);

  /// Allocates on `node` and removes the entry; returns the successor
  /// iterator. With a null sink the grant commits immediately (stats,
  /// hash, callback post — the single-pilot paths); otherwise it is
  /// buffered for the batch paths' deterministic merge commit.
  WaitQueue::iterator grant(PilotEntry& entry, WaitQueue::iterator position,
                            platform::Node& node,
                            GrantSink* sink = nullptr);

  /// Commits one grant: wait-time stats, grant counter, rolling FNV
  /// fingerprint, per-tenant share/counter update, callback post —
  /// always on the loop thread, in merged order on the batch paths
  /// (the only place tenant_shares_ is written).
  void commit_grant(double enqueued_at, const std::string& uid,
                    const std::string& tenant, double share_cost,
                    platform::Slot slot, platform::Node* node,
                    std::function<void(platform::Slot, platform::Node*)>
                        callback);

  /// Full placement pass in grant order; returns grants made. Every
  /// entry still queued afterwards does not fit the current capacity
  /// (backfill) or sits behind a blocked head (fifo) — the invariant
  /// the submit fast path relies on.
  std::size_t try_schedule(PilotEntry& entry, GrantSink* sink = nullptr);

  /// Backfill pass with the locality oracle: within each priority
  /// class, resident requests (zero footprint) are granted first in
  /// submission order, then whatever else fits. Identical to
  /// try_schedule when every footprint is zero, and it reestablishes
  /// the same everything-left-is-unplaceable invariant.
  std::size_t try_schedule_data_aware(PilotEntry& entry,
                                      GrantSink* sink = nullptr);

  /// Fair-share pass: probes every queued entry in (priority, share
  /// snapshot, time, sequence) order with backfill semantics (skip the
  /// unplaceable), so it reestablishes the same
  /// everything-left-is-unplaceable invariant as the other passes.
  std::size_t try_schedule_fair(PilotEntry& entry, GrantSink* sink = nullptr);

  /// DRF dominant resource fraction of `request` on this pilot.
  [[nodiscard]] double dominant_fraction(const PilotEntry& entry,
                                         const ScheduleRequest& request) const;
  [[nodiscard]] double weight_for(const std::string& tenant) const;

  /// Traces one inline placement pass as a zero-length "sched" span
  /// (no-op while tracing is disabled).
  void trace_pass(const PilotEntry& entry, std::size_t grants);

  /// Post-submit fast path: only the entry at `key` can possibly be
  /// granted (all others were unplaceable at unchanged capacity).
  void try_place_new(PilotEntry& entry, WaitQueue::Key key);

  /// Runs placement passes over `touched` pilots — round-robin across
  /// the executor's shards when one is attached, inline otherwise —
  /// then merges and commits the buffered grants in (time, sequence,
  /// shard) order. Returns the number committed.
  std::size_t run_sharded_passes(const std::vector<PilotEntry*>& touched);

  /// Merges per-shard grant buffers in MergeKey order and commits each
  /// grant serially on the calling thread. Returns the number committed.
  std::size_t commit_merged(std::vector<GrantSink> buffers);

  [[nodiscard]] PilotEntry& entry_for(const std::string& pilot_uid);

  Runtime& runtime_;
  SchedulerPolicy policy_;
  LocalityOracle oracle_;
  common::ShardExecutor* executor_ = nullptr;
  std::map<std::string, PilotEntry> pilots_;
  std::map<std::string, double> tenant_weights_;
  /// Cumulative weighted dominant share per tenant. Written only by
  /// commit_grant (loop thread, merged order); read by the sharded
  /// passes as a start-of-pass snapshot.
  std::map<std::string, double> tenant_shares_;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t granted_ = 0;
  std::uint64_t grant_hash_ = common::kFnvOffsetBasis;
  common::Summary wait_times_;
  common::Logger log_;
};

}  // namespace ripple::core
