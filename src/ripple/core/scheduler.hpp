#pragma once

/// \file scheduler.hpp
/// Continuous slot scheduler with service/task priority relations.
///
/// Extends RADICAL-Pilot's agent scheduler the way the paper describes:
/// "We extended the existing Scheduler to enact priority relations
/// between services and tasks". Requests are ordered by (priority desc,
/// submission order); placement is first-fit over the pilot's nodes.
/// Policy `backfill` (default, matching RADICAL-Pilot) lets smaller
/// requests overtake a blocked head-of-queue; `fifo` enforces strict
/// order — the ablation bench compares the two.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ripple/common/statistics.hpp"
#include "ripple/core/entities.hpp"
#include "ripple/core/runtime.hpp"
#include "ripple/platform/node.hpp"

namespace ripple::core {

enum class SchedulerPolicy { fifo, backfill };

/// A slot request from either manager.
struct ScheduleRequest {
  std::string uid;  ///< task/service uid (used for cancel)
  std::size_t cores = 1;
  std::size_t gpus = 0;
  double mem_gb = 0.0;
  int priority = 0;

  /// Fired (asynchronously) with the placement when granted.
  std::function<void(platform::Slot, platform::Node*)> granted;
};

class Scheduler {
 public:
  explicit Scheduler(Runtime& runtime,
                     SchedulerPolicy policy = SchedulerPolicy::backfill);

  void set_policy(SchedulerPolicy policy) noexcept { policy_ = policy; }
  [[nodiscard]] SchedulerPolicy policy() const noexcept { return policy_; }

  /// Registers a pilot's nodes with the scheduler.
  void add_pilot(Pilot& pilot);

  /// Drops a pilot; pending requests for it are discarded.
  void remove_pilot(const std::string& pilot_uid);

  /// Enqueues a request against a pilot's resources. Throws capacity
  /// when the request can never fit on any node of the pilot.
  void submit(const std::string& pilot_uid, ScheduleRequest request);

  /// Removes a queued (not yet granted) request. Returns false if the
  /// request was already granted or is unknown.
  bool cancel(const std::string& pilot_uid, const std::string& request_uid);

  /// Returns a granted slot; wakes the queue.
  void release(const std::string& pilot_uid, const platform::Slot& slot);

  [[nodiscard]] std::size_t queue_length(const std::string& pilot_uid) const;
  [[nodiscard]] std::uint64_t granted_total() const noexcept {
    return granted_;
  }

  /// Distribution of queue wait times (seconds) across all grants.
  [[nodiscard]] const common::Summary& wait_times() const noexcept {
    return wait_times_;
  }

 private:
  struct Waiting {
    ScheduleRequest request;
    std::uint64_t sequence;
    double enqueued_at;
  };

  struct PilotEntry {
    Pilot* pilot = nullptr;
    std::deque<Waiting> waiting;
  };

  void try_schedule(PilotEntry& entry);
  [[nodiscard]] PilotEntry& entry_for(const std::string& pilot_uid);

  Runtime& runtime_;
  SchedulerPolicy policy_;
  std::map<std::string, PilotEntry> pilots_;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t granted_ = 0;
  common::Summary wait_times_;
  common::Logger log_;
};

}  // namespace ripple::core
