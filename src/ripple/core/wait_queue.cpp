#include "ripple/core/wait_queue.hpp"

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::core {

void WaitQueue::push(Key key, Entry entry) {
  ensure(by_uid_.emplace(entry.request.uid, key).second, Errc::invalid_state,
         strutil::cat("wait queue: uid '", entry.request.uid,
                      "' already queued"));
  const bool inserted = queue_.emplace(key, std::move(entry)).second;
  ensure(inserted, Errc::internal, "wait queue: duplicate sequence");
}

bool WaitQueue::erase_uid(const std::string& uid) {
  const auto it = by_uid_.find(uid);
  if (it == by_uid_.end()) return false;
  queue_.erase(it->second);
  by_uid_.erase(it);
  return true;
}

WaitQueue::iterator WaitQueue::erase(iterator position) {
  by_uid_.erase(position->second.request.uid);
  return queue_.erase(position);
}

}  // namespace ripple::core
