#include "ripple/core/descriptions.hpp"

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::core {

void PilotDescription::validate() const {
  ensure(!platform.empty(), Errc::invalid_argument,
         "pilot description needs a platform name");
  ensure(nodes > 0, Errc::invalid_argument,
         "pilot description needs at least one node");
  ensure(walltime > 0.0, Errc::invalid_argument,
         "pilot walltime must be positive");
}

void TaskDescription::validate() const {
  ensure(!kind.empty(), Errc::invalid_argument,
         "task description needs a payload kind");
  ensure(cores > 0 || gpus > 0, Errc::invalid_argument,
         strutil::cat("task '", name, "' requests no resources"));
  ensure(mem_gb >= 0.0, Errc::invalid_argument,
         strutil::cat("task '", name, "' has negative memory"));
}

void ServiceDescription::validate() const {
  ensure(!program.empty(), Errc::invalid_argument,
         "service description needs a program name");
  ensure(cores > 0 || gpus > 0, Errc::invalid_argument,
         strutil::cat("service '", name, "' requests no resources"));
  ensure(ready_timeout > 0.0, Errc::invalid_argument,
         strutil::cat("service '", name, "' has non-positive ready timeout"));
  ensure(heartbeat_interval > 0.0, Errc::invalid_argument,
         strutil::cat("service '", name,
                      "' has non-positive heartbeat interval"));
  ensure(heartbeat_misses > 0, Errc::invalid_argument,
         strutil::cat("service '", name, "' must tolerate >= 1 heartbeat"));
  ensure(max_restarts >= 0, Errc::invalid_argument,
         strutil::cat("service '", name, "' has negative max_restarts"));
}

}  // namespace ripple::core
