#include "ripple/core/data_manager.hpp"

#include <algorithm>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::core {

DataManager::DataManager(Runtime& runtime)
    : runtime_(runtime), rng_(runtime.rng().fork("data_manager")) {}

void DataManager::register_dataset(const std::string& name, double bytes,
                                   const std::string& zone) {
  ensure(!name.empty(), Errc::invalid_argument, "dataset needs a name");
  ensure(bytes >= 0.0, Errc::invalid_argument, "dataset bytes must be >= 0");
  auto [it, inserted] = datasets_.try_emplace(name);
  if (inserted) {
    it->second.name = name;
    it->second.bytes = bytes;
  }
  it->second.zones.insert(zone);
}

bool DataManager::has(const std::string& name) const {
  return datasets_.count(name) != 0;
}

const Dataset& DataManager::dataset(const std::string& name) const {
  const auto it = datasets_.find(name);
  ensure(it != datasets_.end(), Errc::not_found,
         strutil::cat("unknown dataset '", name, "'"));
  return it->second;
}

bool DataManager::available_in(const std::string& name,
                               const std::string& zone) const {
  const auto it = datasets_.find(name);
  return it != datasets_.end() && it->second.zones.count(zone) != 0;
}

void DataManager::set_bandwidth(const std::string& zone_a,
                                const std::string& zone_b,
                                double bytes_per_s) {
  ensure(bytes_per_s > 0.0, Errc::invalid_argument,
         "bandwidth must be positive");
  const auto key = std::minmax(zone_a, zone_b);
  bandwidth_[{key.first, key.second}] = bytes_per_s;
}

void DataManager::set_default_bandwidth(double bytes_per_s) {
  ensure(bytes_per_s > 0.0, Errc::invalid_argument,
         "bandwidth must be positive");
  default_bandwidth_ = bytes_per_s;
}

double DataManager::bandwidth_between(const std::string& zone_a,
                                      const std::string& zone_b) const {
  const auto key = std::minmax(zone_a, zone_b);
  const auto it = bandwidth_.find({key.first, key.second});
  return it == bandwidth_.end() ? default_bandwidth_ : it->second;
}

void DataManager::stage(const std::string& name, const std::string& dst_zone,
                        TransferCallback on_done) {
  ensure(static_cast<bool>(on_done), Errc::invalid_argument,
         "stage: empty callback");
  const auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    runtime_.loop().post([on_done = std::move(on_done)] {
      on_done(false, 0.0);
    });
    return;
  }
  Dataset& ds = it->second;
  if (ds.zones.count(dst_zone) != 0) {
    runtime_.loop().post([on_done = std::move(on_done)] {
      on_done(true, 0.0);
    });
    return;
  }

  const auto flight_key = std::make_pair(name, dst_zone);
  auto flight = in_flight_.find(flight_key);
  if (flight != in_flight_.end()) {
    flight->second.push_back(std::move(on_done));  // piggyback
    return;
  }
  in_flight_[flight_key].push_back(std::move(on_done));

  // Pick the nearest replica: same-zone is impossible here, so any
  // replica works; use the first (zones is ordered, deterministic).
  ensure(!ds.zones.empty(), Errc::internal,
         strutil::cat("dataset '", name, "' has no replica"));
  const std::string src_zone = *ds.zones.begin();
  const double bandwidth = bandwidth_between(src_zone, dst_zone);
  const sim::Duration duration =
      setup_.sample(rng_) + ds.bytes / bandwidth;

  ++transfers_;
  bytes_moved_ += ds.bytes;

  runtime_.loop().call_after(duration, [this, name, dst_zone, flight_key,
                                        duration] {
    transfer_times_.add(duration);
    auto ds_it = datasets_.find(name);
    if (ds_it != datasets_.end()) ds_it->second.zones.insert(dst_zone);
    auto waiting = in_flight_.find(flight_key);
    if (waiting == in_flight_.end()) return;
    auto callbacks = std::move(waiting->second);
    in_flight_.erase(waiting);
    for (auto& callback : callbacks) callback(true, duration);
  });
}

void DataManager::stage_all(const std::vector<std::string>& names,
                            const std::string& dst_zone,
                            BatchCallback on_done) {
  ensure(static_cast<bool>(on_done), Errc::invalid_argument,
         "stage_all: empty callback");
  if (names.empty()) {
    runtime_.loop().post(
        [on_done = std::move(on_done)] { on_done(true, ""); });
    return;
  }
  auto remaining = std::make_shared<std::size_t>(names.size());
  auto failed = std::make_shared<bool>(false);
  auto shared = std::make_shared<BatchCallback>(std::move(on_done));
  for (const auto& name : names) {
    stage(name, dst_zone,
          [name, remaining, failed, shared](bool ok, sim::Duration) {
            if (!ok && !*failed) {
              *failed = true;
              (*shared)(false, name);
            }
            if (--(*remaining) == 0 && !*failed) (*shared)(true, "");
          });
  }
}

void DataManager::put(const std::string& name, double bytes,
                      const std::string& zone) {
  register_dataset(name, bytes, zone);
}

}  // namespace ripple::core
