#include "ripple/core/data_manager.hpp"

#include <algorithm>
#include <memory>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"
#include "ripple/data/placement_advisor.hpp"

namespace ripple::core {

DataManager::DataManager(Runtime& runtime)
    : runtime_(runtime),
      engine_(runtime.loop(), runtime.rng().fork("data_manager")) {
  engine_.set_network(&runtime.network());
}

void DataManager::register_dataset(const std::string& name, double bytes,
                                   const std::string& zone) {
  catalog_.register_dataset(name, bytes, zone);
}

bool DataManager::has(const std::string& name) const {
  return catalog_.has(name);
}

const Dataset& DataManager::dataset(const std::string& name) const {
  return catalog_.dataset(name);
}

bool DataManager::available_in(const std::string& name,
                               const std::string& zone) const {
  return catalog_.available_in(name, zone);
}

void DataManager::add_store(const std::string& zone, double capacity_bytes) {
  catalog_.add_store(zone, capacity_bytes);
}

void DataManager::set_setup_latency(common::Distribution dist) {
  engine_.set_setup_latency(dist);
}

void DataManager::set_bandwidth(const std::string& zone_a,
                                const std::string& zone_b,
                                double bytes_per_s) {
  engine_.set_bandwidth(zone_a, zone_b, bytes_per_s);
}

void DataManager::set_default_bandwidth(double bytes_per_s) {
  engine_.set_default_bandwidth(bytes_per_s);
}

double DataManager::bytes_required(const std::vector<std::string>& names,
                                   const std::string& zone) const {
  // One definition of the locality cost metric: the advisor's.
  return data::PlacementAdvisor(catalog_).bytes_to_move(names, zone);
}

std::string DataManager::pick_source(const Dataset& ds,
                                     const std::string& dst_zone) const {
  ensure(!ds.zones.empty(), Errc::internal,
         strutil::cat("dataset '", ds.name, "' has no replica"));
  const std::string* best = nullptr;
  double best_bw = -1.0;
  for (const auto& zone : ds.zones) {  // ordered: ties pick the smallest
    const double bw = engine_.bandwidth_between(zone, dst_zone);
    if (bw > best_bw) {
      best = &zone;
      best_bw = bw;
    }
  }
  return *best;
}

void DataManager::stage(const std::string& name, const std::string& dst_zone,
                        TransferCallback on_done) {
  (void)stage_tracked(name, dst_zone, std::move(on_done));
}

DataManager::StageTicket DataManager::stage_tracked(
    const std::string& name, const std::string& dst_zone,
    TransferCallback on_done) {
  ensure(static_cast<bool>(on_done), Errc::invalid_argument,
         "stage: empty callback");
  if (!catalog_.has(name)) {
    runtime_.loop().post(
        [on_done = std::move(on_done)] { on_done(false, 0.0); });
    return 0;
  }
  if (catalog_.available_in(name, dst_zone)) {
    catalog_.touch(name, dst_zone);
    runtime_.loop().post(
        [on_done = std::move(on_done)] { on_done(true, 0.0); });
    return 0;
  }

  const FlightKey key{name, dst_zone};
  const StageTicket ticket = next_ticket_++;
  const auto flight = flights_.find(key);
  if (flight != flights_.end()) {  // piggyback on the shared transfer
    flight->second.waiters.emplace_back(ticket, std::move(on_done));
    ticket_index_.emplace(ticket, key);
    return ticket;
  }

  const Dataset& ds = catalog_.dataset(name);
  // Eviction may have reclaimed every replica of an unprotected
  // dataset; that is a failed stage, not an internal error.
  if (ds.zones.empty()) {
    runtime_.loop().post(
        [on_done = std::move(on_done)] { on_done(false, 0.0); });
    return 0;
  }
  if (!catalog_.reserve(dst_zone, ds.bytes)) {
    runtime_.loop().post(
        [on_done = std::move(on_done)] { on_done(false, 0.0); });
    return 0;
  }
  const std::string src_zone = pick_source(ds, dst_zone);
  // The source replica feeds the transfer: pin it so store pressure in
  // its zone cannot evict it mid-flight.
  catalog_.pin(name, src_zone);

  Flight new_flight;
  new_flight.src_zone = src_zone;
  new_flight.reserved_bytes = ds.bytes;
  new_flight.waiters.emplace_back(ticket, std::move(on_done));
  new_flight.transfer_id = engine_.transfer(
      name, src_zone, dst_zone, ds.bytes,
      [this, key](bool ok, sim::Duration elapsed) {
        on_flight_done(key, ok, elapsed);
      });
  flights_.emplace(key, std::move(new_flight));
  ticket_index_.emplace(ticket, key);
  return ticket;
}

void DataManager::on_flight_done(const FlightKey& key, bool ok,
                                 sim::Duration elapsed) {
  const auto it = flights_.find(key);
  if (it == flights_.end()) return;
  auto waiters = std::move(it->second.waiters);
  const double reserved = it->second.reserved_bytes;
  catalog_.unpin(key.first, it->second.src_zone);
  flights_.erase(it);
  if (ok) {
    catalog_.commit_replica(key.first, key.second);
  } else {
    catalog_.release_reservation(key.second, reserved);
  }
  for (auto& [ticket, callback] : waiters) {
    ticket_index_.erase(ticket);
    callback(ok, elapsed);
  }
}

bool DataManager::cancel_stage(StageTicket ticket) {
  const auto indexed = ticket_index_.find(ticket);
  if (indexed == ticket_index_.end()) return false;
  const FlightKey key = indexed->second;
  ticket_index_.erase(indexed);
  const auto it = flights_.find(key);
  if (it == flights_.end()) return false;
  auto& waiters = it->second.waiters;
  waiters.erase(std::remove_if(waiters.begin(), waiters.end(),
                               [ticket](const auto& waiter) {
                                 return waiter.first == ticket;
                               }),
                waiters.end());
  if (waiters.empty()) {
    // Last waiter gone: the transfer itself is no longer wanted.
    engine_.cancel(it->second.transfer_id);
    catalog_.unpin(key.first, it->second.src_zone);
    catalog_.release_reservation(key.second, it->second.reserved_bytes);
    flights_.erase(it);
  }
  return true;
}

struct DataManager::StageBatch {
  std::size_t remaining = 0;
  bool failed = false;     ///< first failure already reported
  bool abandoned = false;  ///< cancel_batch: callback must never fire
  std::vector<StageTicket> tickets;
  BatchCallback on_done;
};

void DataManager::stage_all(const std::vector<std::string>& names,
                            const std::string& dst_zone,
                            BatchCallback on_done) {
  (void)stage_all_tracked(names, dst_zone, std::move(on_done));
}

DataManager::BatchHandle DataManager::stage_all_tracked(
    const std::vector<std::string>& names, const std::string& dst_zone,
    BatchCallback on_done) {
  std::vector<std::pair<std::string, std::string>> targets;
  targets.reserve(names.size());
  for (const auto& name : names) targets.emplace_back(name, dst_zone);
  return stage_all_tracked(targets, std::move(on_done));
}

DataManager::BatchHandle DataManager::stage_all_tracked(
    const std::vector<std::pair<std::string, std::string>>& targets,
    BatchCallback on_done) {
  ensure(static_cast<bool>(on_done), Errc::invalid_argument,
         "stage_all: empty callback");
  if (targets.empty()) {
    runtime_.loop().post(
        [on_done = std::move(on_done)] { on_done(true, ""); });
    return nullptr;
  }
  auto batch = std::make_shared<StageBatch>();
  batch->remaining = targets.size();
  batch->tickets.resize(targets.size(), 0);
  batch->on_done = std::move(on_done);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const std::string& name = targets[i].first;
    batch->tickets[i] = stage_tracked(
        name, targets[i].second,
        [this, batch, i, name](bool ok, sim::Duration) {
          batch->tickets[i] = 0;  // completed: nothing left to cancel
          if (batch->abandoned) return;
          if (!ok && !batch->failed) {
            batch->failed = true;
            // Abandon the batch's other in-flight stages; shared
            // transfers keep running for their remaining waiters.
            for (const StageTicket ticket : batch->tickets) {
              if (ticket != 0) cancel_stage(ticket);
            }
            batch->on_done(false, name);
            return;
          }
          if (--batch->remaining == 0 && !batch->failed) {
            batch->on_done(true, "");
          }
        });
  }
  return batch;
}

void DataManager::cancel_batch(const BatchHandle& handle) {
  if (!handle) return;
  auto batch = std::static_pointer_cast<StageBatch>(handle);
  if (batch->failed || batch->abandoned) return;
  batch->abandoned = true;
  for (StageTicket& ticket : batch->tickets) {
    if (ticket != 0) {
      cancel_stage(ticket);
      ticket = 0;
    }
  }
}

void DataManager::put(const std::string& name, double bytes,
                      const std::string& zone) {
  catalog_.register_dataset(name, bytes, zone);
}

}  // namespace ripple::core
