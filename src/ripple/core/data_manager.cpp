#include "ripple/core/data_manager.hpp"

#include <algorithm>
#include <memory>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"
#include "ripple/data/placement_advisor.hpp"

namespace ripple::core {

DataManager::DataManager(Runtime& runtime)
    : runtime_(runtime),
      engine_(runtime.loop(), runtime.rng().fork("data_manager")) {
  engine_.set_network(&runtime.network());
  engine_.set_trace(&runtime.tracer(), &runtime.counters());
}

void DataManager::register_dataset(const std::string& name, double bytes,
                                   const std::string& zone,
                                   const std::string& content_id) {
  catalog_.register_dataset(name, bytes, zone, content_id);
}

bool DataManager::has(const std::string& name) const {
  return catalog_.has(name);
}

const Dataset& DataManager::dataset(const std::string& name) const {
  return catalog_.dataset(name);
}

bool DataManager::available_in(const std::string& name,
                               const std::string& zone) const {
  return catalog_.available_in(name, zone);
}

void DataManager::add_store(const std::string& zone, double capacity_bytes) {
  catalog_.add_store(zone, capacity_bytes);
}

void DataManager::set_setup_latency(common::Distribution dist) {
  engine_.set_setup_latency(dist);
}

void DataManager::set_bandwidth(const std::string& zone_a,
                                const std::string& zone_b,
                                double bytes_per_s) {
  engine_.set_bandwidth(zone_a, zone_b, bytes_per_s);
}

void DataManager::set_default_bandwidth(double bytes_per_s) {
  engine_.set_default_bandwidth(bytes_per_s);
}

double DataManager::bytes_required(const std::vector<std::string>& names,
                                   const std::string& zone) const {
  // One definition of the locality cost metric: the advisor's.
  return data::PlacementAdvisor(catalog_).bytes_to_move(names, zone);
}

DataManager::Flight& DataManager::launch_flight(
    const FlightKey& key, std::vector<std::string> sources, double bytes,
    bool prefetch, const std::string& tenant) {
  const std::string& name = key.first;
  const std::string& dst_zone = key.second;
  // Every source replica feeds the (striped) transfer: pin them all so
  // store pressure in their zones cannot evict them mid-flight.
  for (const auto& src : sources) catalog_.pin(name, src, tenant);

  Flight flight;
  flight.src_zones = std::move(sources);
  flight.reserved_bytes = bytes;
  flight.prefetch = prefetch;
  flight.tenant = tenant;
  if (prefetch) {
    prefetch_inflight_[dst_zone] += bytes;
    ++prefetches_started_;
  }
  auto [it, inserted] = flights_.emplace(key, std::move(flight));
  it->second.transfer_id = engine_.transfer_striped(
      name, it->second.src_zones, dst_zone, bytes,
      [this, key](bool ok, sim::Duration elapsed) {
        on_flight_done(key, ok, elapsed);
      },
      tenant);
  return it->second;
}

void DataManager::stage(const std::string& name, const std::string& dst_zone,
                        TransferCallback on_done,
                        const std::string& tenant) {
  (void)stage_tracked(name, dst_zone, std::move(on_done), tenant);
}

DataManager::StageTicket DataManager::stage_tracked(
    const std::string& name, const std::string& dst_zone,
    TransferCallback on_done, const std::string& tenant) {
  ensure(static_cast<bool>(on_done), Errc::invalid_argument,
         "stage: empty callback");
  if (!catalog_.has(name)) {
    runtime_.loop().post(
        [on_done = std::move(on_done)] { on_done(false, 0.0); });
    return 0;
  }
  if (catalog_.available_in(name, dst_zone)) {
    catalog_.touch(name, dst_zone);
    runtime_.loop().post(
        [on_done = std::move(on_done)] { on_done(true, 0.0); });
    return 0;
  }

  // Flights key on the canonical (content-resolved) name: concurrent
  // stages of the same content under different tenant aliases coalesce
  // onto one transfer instead of each paying for the bytes.
  const FlightKey key{catalog_.canonical(name), dst_zone};
  const StageTicket ticket = next_ticket_++;
  const auto flight = flights_.find(key);
  if (flight != flights_.end()) {  // piggyback on the shared transfer
    flight->second.waiters.emplace_back(ticket, std::move(on_done));
    ticket_index_.emplace(ticket, key);
    return ticket;
  }

  const Dataset& ds = catalog_.dataset(name);
  // Eviction may have reclaimed every replica of an unprotected
  // dataset; that is a failed stage, not an internal error.
  if (ds.zones.empty()) {
    runtime_.loop().post(
        [on_done = std::move(on_done)] { on_done(false, 0.0); });
    return 0;
  }
  // Demand outranks speculation: when the store cannot take the
  // reservation, reclaim waiterless prefetch flights into this zone
  // (cancelling them frees their reservations) before giving up — but
  // only when the dataset could ever fit; a doomed oversized stage
  // must not wipe out useful speculative work on its way to failing.
  bool reserved = catalog_.reserve(dst_zone, ds.bytes, tenant);
  if (!reserved && ds.bytes <= catalog_.store(dst_zone).capacity) {
    while (!reserved && reclaim_one_prefetch(dst_zone)) {
      reserved = catalog_.reserve(dst_zone, ds.bytes, tenant);
    }
  }
  if (!reserved) {
    runtime_.loop().post(
        [on_done = std::move(on_done)] { on_done(false, 0.0); });
    return 0;
  }
  // Every replica contributes: a multi-zone dataset moves as one
  // striped transfer over the disjoint (src, dst) links.
  Flight& launched = launch_flight(
      key, {ds.zones.begin(), ds.zones.end()}, ds.bytes,
      /*prefetch=*/false, tenant);
  launched.waiters.emplace_back(ticket, std::move(on_done));
  ticket_index_.emplace(ticket, key);
  return ticket;
}

std::size_t DataManager::prefetch(const std::vector<std::string>& names,
                                  const std::string& zone,
                                  const std::string& tenant) {
  std::size_t started = 0;
  for (const auto& name : names) {
    if (!catalog_.has(name)) continue;
    if (catalog_.available_in(name, zone)) continue;
    const std::string& canon = catalog_.canonical(name);
    if (flights_.count({canon, zone}) != 0) continue;  // already inbound
    const Dataset& ds = catalog_.dataset(name);
    if (ds.zones.empty()) continue;
    // Budget: bytes already being prefetched into this store.
    const auto inflight = prefetch_inflight_.find(zone);
    const double pending =
        inflight == prefetch_inflight_.end() ? 0.0 : inflight->second;
    if (pending + ds.bytes > prefetch_budget_) continue;
    // Never evict for a prefetch: demand data outranks speculation.
    if (catalog_.store(zone).free() < ds.bytes) continue;
    // Idle links only — a prefetch must not steal fair-share bandwidth
    // from demand transfers already flowing.
    std::vector<std::string> idle_sources;
    for (const auto& src : ds.zones) {
      if (src == zone) continue;
      if (engine_.active_on(src, zone) == 0 &&
          engine_.queued_on(src, zone) == 0) {
        idle_sources.push_back(src);
      }
    }
    if (idle_sources.empty()) continue;
    if (!catalog_.reserve(zone, ds.bytes, tenant)) continue;
    launch_flight({canon, zone}, std::move(idle_sources), ds.bytes,
                  /*prefetch=*/true, tenant);
    ++started;
  }
  return started;
}

void DataManager::set_prefetch_budget(double bytes) {
  ensure(bytes >= 0.0, Errc::invalid_argument,
         "prefetch budget must be >= 0");
  prefetch_budget_ = bytes;
}

bool DataManager::reclaim_one_prefetch(const std::string& zone) {
  // First waiterless prefetch into `zone` in flight-key order
  // (deterministic). A prefetch a demand stage piggybacked on is no
  // longer speculation and is never reclaimed.
  for (auto it = flights_.begin(); it != flights_.end(); ++it) {
    if (it->first.second != zone) continue;
    if (!it->second.prefetch || !it->second.waiters.empty()) continue;
    engine_.cancel(it->second.transfer_id);
    for (const auto& src : it->second.src_zones) {
      catalog_.unpin(it->first.first, src, it->second.tenant);
    }
    catalog_.release_reservation(zone, it->second.reserved_bytes,
                                 it->second.tenant);
    prefetch_inflight_[zone] -= it->second.reserved_bytes;
    if (prefetch_inflight_[zone] < 0.0) prefetch_inflight_[zone] = 0.0;
    flights_.erase(it);
    return true;
  }
  return false;
}

bool DataManager::abandon_prefetch(const std::string& name,
                                   const std::string& zone) {
  const auto it = flights_.find({catalog_.canonical(name), zone});
  if (it == flights_.end()) return false;
  // Only speculation is revocable. A demand flight, or a prefetch a
  // demand stage piggybacked on, has callers counting on its callback.
  if (!it->second.prefetch || !it->second.waiters.empty()) return false;
  engine_.cancel(it->second.transfer_id);
  for (const auto& src : it->second.src_zones) {
    catalog_.unpin(name, src, it->second.tenant);
  }
  catalog_.release_reservation(zone, it->second.reserved_bytes,
                               it->second.tenant);
  prefetch_inflight_[zone] -= it->second.reserved_bytes;
  if (prefetch_inflight_[zone] < 0.0) prefetch_inflight_[zone] = 0.0;
  flights_.erase(it);
  return true;
}

void DataManager::on_flight_done(const FlightKey& key, bool ok,
                                 sim::Duration elapsed) {
  const auto it = flights_.find(key);
  if (it == flights_.end()) return;
  auto waiters = std::move(it->second.waiters);
  const double reserved = it->second.reserved_bytes;
  const std::string tenant = it->second.tenant;
  for (const auto& src : it->second.src_zones) {
    catalog_.unpin(key.first, src, tenant);
  }
  if (it->second.prefetch) {
    prefetch_inflight_[key.second] -= reserved;
    if (prefetch_inflight_[key.second] < 0.0) {
      prefetch_inflight_[key.second] = 0.0;
    }
    if (ok) ++prefetches_completed_;
  }
  flights_.erase(it);
  if (ok) {
    catalog_.commit_replica(key.first, key.second, tenant);
  } else {
    catalog_.release_reservation(key.second, reserved, tenant);
  }
  for (auto& [ticket, callback] : waiters) {
    ticket_index_.erase(ticket);
    callback(ok, elapsed);
  }
}

bool DataManager::cancel_stage(StageTicket ticket) {
  const auto indexed = ticket_index_.find(ticket);
  if (indexed == ticket_index_.end()) return false;
  const FlightKey key = indexed->second;
  ticket_index_.erase(indexed);
  const auto it = flights_.find(key);
  if (it == flights_.end()) return false;
  auto& waiters = it->second.waiters;
  waiters.erase(std::remove_if(waiters.begin(), waiters.end(),
                               [ticket](const auto& waiter) {
                                 return waiter.first == ticket;
                               }),
                waiters.end());
  if (waiters.empty() && !it->second.prefetch) {
    // Last waiter gone: the transfer itself is no longer wanted. (A
    // prefetch flight keeps running waiterless — that is its job.)
    engine_.cancel(it->second.transfer_id);
    for (const auto& src : it->second.src_zones) {
      catalog_.unpin(key.first, src, it->second.tenant);
    }
    catalog_.release_reservation(key.second, it->second.reserved_bytes,
                                 it->second.tenant);
    flights_.erase(it);
  }
  return true;
}

struct DataManager::StageBatch {
  std::size_t remaining = 0;
  bool failed = false;     ///< first failure already reported
  bool abandoned = false;  ///< cancel_batch: callback must never fire
  std::vector<StageTicket> tickets;
  BatchCallback on_done;
};

void DataManager::stage_all(const std::vector<std::string>& names,
                            const std::string& dst_zone,
                            BatchCallback on_done,
                            const std::string& tenant) {
  (void)stage_all_tracked(names, dst_zone, std::move(on_done), tenant);
}

DataManager::BatchHandle DataManager::stage_all_tracked(
    const std::vector<std::string>& names, const std::string& dst_zone,
    BatchCallback on_done, const std::string& tenant) {
  std::vector<std::pair<std::string, std::string>> targets;
  targets.reserve(names.size());
  for (const auto& name : names) targets.emplace_back(name, dst_zone);
  return stage_all_tracked(targets, std::move(on_done), tenant);
}

DataManager::BatchHandle DataManager::stage_all_tracked(
    const std::vector<std::pair<std::string, std::string>>& targets,
    BatchCallback on_done, const std::string& tenant) {
  ensure(static_cast<bool>(on_done), Errc::invalid_argument,
         "stage_all: empty callback");
  if (targets.empty()) {
    runtime_.loop().post(
        [on_done = std::move(on_done)] { on_done(true, ""); });
    return nullptr;
  }
  auto batch = std::make_shared<StageBatch>();
  batch->remaining = targets.size();
  batch->tickets.resize(targets.size(), 0);
  batch->on_done = std::move(on_done);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const std::string& name = targets[i].first;
    batch->tickets[i] = stage_tracked(
        name, targets[i].second,
        [this, batch, i, name](bool ok, sim::Duration) {
          batch->tickets[i] = 0;  // completed: nothing left to cancel
          if (batch->abandoned) return;
          if (!ok && !batch->failed) {
            batch->failed = true;
            // Abandon the batch's other in-flight stages; shared
            // transfers keep running for their remaining waiters.
            for (const StageTicket ticket : batch->tickets) {
              if (ticket != 0) cancel_stage(ticket);
            }
            batch->on_done(false, name);
            return;
          }
          if (--batch->remaining == 0 && !batch->failed) {
            batch->on_done(true, "");
          }
        },
        tenant);
  }
  return batch;
}

void DataManager::cancel_batch(const BatchHandle& handle) {
  if (!handle) return;
  auto batch = std::static_pointer_cast<StageBatch>(handle);
  if (batch->failed || batch->abandoned) return;
  batch->abandoned = true;
  for (StageTicket& ticket : batch->tickets) {
    if (ticket != 0) {
      cancel_stage(ticket);
      ticket = 0;
    }
  }
}

void DataManager::put(const std::string& name, double bytes,
                      const std::string& zone,
                      const std::string& content_id) {
  catalog_.register_dataset(name, bytes, zone, content_id);
}

// ---------------------------------------------------------------------------
// Store-failure repair
// ---------------------------------------------------------------------------

void DataManager::record_repair(const std::string& event) {
  const std::string line = strutil::cat(
      strutil::format_fixed(runtime_.loop().now(), 6), " ", event);
  repair_log_.push_back(line);
  repair_hash_ = common::fnv1a(repair_hash_, line);
}

std::string DataManager::repair_target(const std::string& name) const {
  const Dataset& ds = catalog_.dataset(name);
  std::string best;
  double best_free = -1.0;
  for (const std::string& zone : catalog_.store_zones()) {
    if (ds.zones.count(zone) != 0) continue;
    const double free = catalog_.store(zone).free();
    if (free < ds.bytes) continue;
    if (free > best_free) {  // sorted iteration: ties keep the first
      best = zone;
      best_free = free;
    }
  }
  return best;
}

std::size_t DataManager::handle_store_failure(const std::string& zone) {
  // 1. Flights into the dead store first, while its reservation ledger
  // still exists: cancel the transfer, unpin the sources, return the
  // reservation, fail the waiters on the next loop turn (a waiter may
  // start new stages; those must observe the store already gone).
  std::vector<FlightKey> inbound;
  for (const auto& [key, flight] : flights_) {
    if (key.second == zone) inbound.push_back(key);
  }
  for (const FlightKey& key : inbound) {
    const auto it = flights_.find(key);
    if (it == flights_.end()) continue;
    auto waiters = std::move(it->second.waiters);
    engine_.cancel(it->second.transfer_id);
    for (const auto& src : it->second.src_zones) {
      catalog_.unpin(key.first, src, it->second.tenant);
    }
    catalog_.release_reservation(zone, it->second.reserved_bytes,
                                 it->second.tenant);
    if (it->second.prefetch) {
      prefetch_inflight_[zone] -= it->second.reserved_bytes;
      if (prefetch_inflight_[zone] < 0.0) prefetch_inflight_[zone] = 0.0;
    }
    flights_.erase(it);
    for (auto& [ticket, callback] : waiters) {
      ticket_index_.erase(ticket);
      runtime_.loop().post(
          [cb = std::move(callback)] { cb(false, 0.0); });
    }
  }

  // 2. Force-drop everything the store held.
  const std::vector<std::string> lost = catalog_.fail_store(zone);
  record_repair(strutil::cat("store_failed ", zone, " lost=", lost.size()));

  // 3. Re-replicate each lost dataset from its survivors — `lost` is
  // sorted and the target choice is a pure function of catalog state,
  // so the repair schedule is deterministic.
  std::size_t repairs = 0;
  for (const std::string& name : lost) {
    if (!catalog_.dataset(name).zones.empty()) {
      const std::string target = repair_target(name);
      if (target.empty()) {
        record_repair(strutil::cat("no_target ", name));
        continue;
      }
      record_repair(strutil::cat("repair ", name, " -> ", target));
      ++repairs_started_;
      ++repairs;
      stage(name, target, [this, name, target](bool ok, sim::Duration) {
        if (ok) {
          ++repairs_completed_;
          record_repair(strutil::cat("repaired ", name, " ", target));
        } else {
          record_repair(strutil::cat("repair_failed ", name, " ", target));
        }
      });
    } else {
      record_repair(strutil::cat("lost ", name));
    }
  }
  return repairs;
}

}  // namespace ripple::core
