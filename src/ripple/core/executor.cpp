#include "ripple/core/executor.hpp"

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::core {

// ---------------------------------------------------------------------------
// ModeledPayload
// ---------------------------------------------------------------------------

void ModeledPayload::run(ExecutionContext& ctx, DoneFn done, FailFn fail) {
  (void)fail;
  const sim::Duration duration =
      duration_.sample(ctx.rng) * ctx.speed_factor;
  ctx.loop().call_after(duration, [duration, done = std::move(done)] {
    json::Value result = json::Value::object();
    result.set("runtime", duration);
    done(std::move(result));
  });
}

// ---------------------------------------------------------------------------
// Registries
// ---------------------------------------------------------------------------

PayloadRegistry::PayloadRegistry() {
  register_factory("modeled", [](const TaskDescription& desc) {
    return std::make_unique<ModeledPayload>(desc.duration);
  });
}

void PayloadRegistry::register_factory(const std::string& kind,
                                       Factory factory) {
  ensure(static_cast<bool>(factory), Errc::invalid_argument,
         "payload factory must not be empty");
  factories_[kind] = std::move(factory);
}

bool PayloadRegistry::has(const std::string& kind) const {
  return factories_.count(kind) != 0;
}

std::unique_ptr<TaskPayload> PayloadRegistry::create(
    const TaskDescription& desc) const {
  const auto it = factories_.find(desc.kind);
  ensure(it != factories_.end(), Errc::not_found,
         strutil::cat("no payload factory for kind '", desc.kind, "'"));
  auto payload = it->second(desc);
  ensure(payload != nullptr, Errc::internal,
         strutil::cat("payload factory '", desc.kind, "' returned null"));
  return payload;
}

void ProgramRegistry::register_factory(const std::string& name,
                                       Factory factory) {
  ensure(static_cast<bool>(factory), Errc::invalid_argument,
         "program factory must not be empty");
  factories_[name] = std::move(factory);
}

bool ProgramRegistry::has(const std::string& name) const {
  return factories_.count(name) != 0;
}

std::unique_ptr<ServiceProgram> ProgramRegistry::create(
    const ServiceDescription& desc) const {
  const auto it = factories_.find(desc.program);
  ensure(it != factories_.end(), Errc::not_found,
         strutil::cat("no service program '", desc.program, "'"));
  auto program = it->second(desc);
  ensure(program != nullptr, Errc::internal,
         strutil::cat("program factory '", desc.program, "' returned null"));
  return program;
}

void FunctionRegistry::register_fn(const std::string& name, Fn fn) {
  ensure(static_cast<bool>(fn), Errc::invalid_argument,
         "function must not be empty");
  functions_[name] = std::move(fn);
}

bool FunctionRegistry::has(const std::string& name) const {
  return functions_.count(name) != 0;
}

const FunctionRegistry::Fn& FunctionRegistry::get(
    const std::string& name) const {
  const auto it = functions_.find(name);
  ensure(it != functions_.end(), Errc::not_found,
         strutil::cat("no registered function '", name, "'"));
  return it->second;
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

namespace {

/// Built-in "function" payload: runs a registered C++ callable for real,
/// while the simulated duration comes from the task's duration model.
class FunctionPayload final : public TaskPayload {
 public:
  FunctionPayload(const FunctionRegistry& registry, TaskDescription desc)
      : registry_(registry), desc_(std::move(desc)) {}

  void run(ExecutionContext& ctx, DoneFn done, FailFn fail) override {
    const std::string fn_name =
        desc_.payload.get_or("fn", json::Value("")).as_string();
    if (!registry_.has(fn_name)) {
      fail(strutil::cat("unknown function '", fn_name, "'"));
      return;
    }
    json::Value output;
    try {
      output = registry_.get(fn_name)(
          ctx, desc_.payload.get_or("args", json::Value::object()));
    } catch (const std::exception& e) {
      fail(strutil::cat("function '", fn_name, "' threw: ", e.what()));
      return;
    }
    const sim::Duration duration =
        desc_.duration.sample(ctx.rng) * ctx.speed_factor;
    ctx.loop().call_after(
        duration, [duration, output = std::move(output),
                   done = std::move(done)]() mutable {
          json::Value result = json::Value::object();
          result.set("runtime", duration);
          result.set("output", std::move(output));
          done(std::move(result));
        });
  }

 private:
  const FunctionRegistry& registry_;
  TaskDescription desc_;
};

}  // namespace

Executor::Executor(Runtime& runtime) : runtime_(runtime) {
  payloads_.register_factory("function", [this](const TaskDescription& desc) {
    return std::make_unique<FunctionPayload>(functions_, desc);
  });
}

ExecutionContext Executor::make_context(const std::string& uid,
                                        sim::HostId host,
                                        json::Value config) {
  ExecutionContext ctx{.runtime = &runtime_,
                       .data = nullptr,
                       .host = std::move(host),
                       .uid = uid,
                       .config = std::move(config),
                       .rng = runtime_.rng().fork(uid),
                       .log = runtime_.make_logger(uid)};
  return ctx;
}

void Executor::launch(platform::Cluster& cluster,
                      std::size_t concurrency_hint,
                      std::function<void(sim::Duration)> done) {
  ++launches_;
  cluster.launcher().launch(std::move(done), concurrency_hint);
}

}  // namespace ripple::core
