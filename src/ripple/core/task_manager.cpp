#include "ripple/core/task_manager.hpp"

#include <algorithm>

#include "ripple/common/error.hpp"
#include "ripple/common/ids.hpp"
#include "ripple/common/strutil.hpp"
#include "ripple/platform/cluster.hpp"

namespace ripple::core {

TaskManager::TaskManager(Runtime& runtime, Scheduler& scheduler,
                         Executor& executor, DataManager& data,
                         ServiceManager& services)
    : runtime_(runtime),
      scheduler_(scheduler),
      executor_(executor),
      data_(data),
      services_(services),
      log_(runtime.make_logger("task_manager")) {
  // Re-evaluate waiting tasks whenever any entity changes state: a
  // dependency may have completed or a required service become RUNNING.
  runtime_.pubsub().subscribe(
      "state", [this](const std::string&, const json::Value& event) {
        const std::string kind = event.at("kind").as_string();
        if (kind == "task" || kind == "service") recheck_waiting();
      });
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

TaskManager::Active& TaskManager::active_for(const std::string& uid) {
  const auto it = tasks_.find(uid);
  ensure(it != tasks_.end(), Errc::not_found,
         strutil::cat("unknown task '", uid, "'"));
  return it->second;
}

const TaskManager::Active& TaskManager::active_for(
    const std::string& uid) const {
  const auto it = tasks_.find(uid);
  ensure(it != tasks_.end(), Errc::not_found,
         strutil::cat("unknown task '", uid, "'"));
  return it->second;
}

const Task& TaskManager::get(const std::string& uid) const {
  return *active_for(uid).task;
}

Task& TaskManager::get_mutable(const std::string& uid) {
  return *active_for(uid).task;
}

bool TaskManager::exists(const std::string& uid) const {
  return tasks_.count(uid) != 0;
}

std::vector<std::string> TaskManager::uids() const {
  std::vector<std::string> out;
  out.reserve(tasks_.size());
  for (const auto& [uid, active] : tasks_) out.push_back(uid);
  return out;
}

std::size_t TaskManager::count_in_state(TaskState state) const {
  std::size_t n = 0;
  for (const auto& [uid, active] : tasks_) {
    if (active.task->state() == state) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// State bookkeeping
// ---------------------------------------------------------------------------

void TaskManager::set_state(Active& active, TaskState state) {
  active.task->set_state(state, runtime_.loop().now());
  runtime_.publish_state("task", active.task->uid(), to_string(state));
  if (is_terminal(state)) recheck_watchers();
}

void TaskManager::recheck_watchers() {
  for (std::size_t i = 0; i < watchers_.size();) {
    DoneWatcher& watcher = watchers_[i];
    bool all_terminal = true;
    bool all_done = true;
    for (const auto& uid : watcher.uids) {
      const TaskState state = get(uid).state();
      if (!is_terminal(state)) all_terminal = false;
      if (state != TaskState::done) all_done = false;
    }
    if (all_terminal) {
      auto callback = std::move(watcher.on_done);
      watchers_.erase(watchers_.begin() + static_cast<std::ptrdiff_t>(i));
      runtime_.loop().post(
          [callback = std::move(callback), all_done] { callback(all_done); });
    } else {
      ++i;
    }
  }
}

void TaskManager::when_done(std::vector<std::string> uids,
                            std::function<void(bool)> on_done) {
  ensure(static_cast<bool>(on_done), Errc::invalid_argument,
         "when_done: empty callback");
  for (const auto& uid : uids) {
    ensure(exists(uid), Errc::not_found,
           strutil::cat("when_done: unknown task '", uid, "'"));
  }
  watchers_.push_back(DoneWatcher{std::move(uids), std::move(on_done)});
  recheck_watchers();
}

// ---------------------------------------------------------------------------
// Submission & readiness
// ---------------------------------------------------------------------------

std::string TaskManager::create_task(Pilot& pilot, TaskDescription desc) {
  desc.validate();
  ensure(executor_.payloads().has(desc.kind), Errc::not_found,
         strutil::cat("no payload factory for kind '", desc.kind, "'"));
  for (const auto& dep : desc.depends_on) {
    ensure(exists(dep), Errc::not_found,
           strutil::cat("dependency '", dep, "' does not exist"));
  }
  for (const auto& svc : desc.requires_services) {
    ensure(services_.exists(svc), Errc::not_found,
           strutil::cat("required service '", svc, "' does not exist"));
  }

  const std::string uid = runtime_.make_uid("task");
  Active active;
  active.task = std::make_unique<Task>(uid, std::move(desc));
  active.task->set_pilot_uid(pilot.uid());
  active.pilot = &pilot;
  tasks_.emplace(uid, std::move(active));
  runtime_.publish_state("task", uid, to_string(TaskState::created));
  return uid;
}

std::string TaskManager::submit(Pilot& pilot, TaskDescription desc) {
  const std::string uid = create_task(pilot, std::move(desc));
  runtime_.loop().post([this, uid] { evaluate(uid); });
  return uid;
}

std::vector<std::string> TaskManager::submit_all(
    Pilot& pilot, std::vector<TaskDescription> descs) {
  std::vector<std::string> out;
  out.reserve(descs.size());
  // One deferred pass: evaluate everything, then enter the scheduler as
  // a single batch so the waiting queue is scanned once, not N times.
  // Posted even when a later description throws — already-created tasks
  // must still be evaluated, as they were under per-task submission.
  const auto post_batch = [this, &pilot](std::vector<std::string> uids) {
    if (uids.empty()) return;
    runtime_.loop().post([this, &pilot, uids = std::move(uids)] {
      std::vector<std::string> ready;
      for (const auto& uid : uids) evaluate(uid, &ready);
      schedule_batch(pilot, ready);
    });
  };
  try {
    for (auto& desc : descs) {
      out.push_back(create_task(pilot, std::move(desc)));
    }
  } catch (...) {
    post_batch(out);
    throw;
  }
  post_batch(out);
  return out;
}

TaskManager::Readiness TaskManager::readiness(const Active& active,
                                              std::string* blocker) const {
  const TaskDescription& desc = active.task->description();
  for (const auto& dep : desc.depends_on) {
    const TaskState state = get(dep).state();
    if (state == TaskState::failed || state == TaskState::canceled) {
      if (blocker) *blocker = dep;
      return Readiness::broken;
    }
    if (state != TaskState::done) return Readiness::pending;
  }
  for (const auto& svc : desc.requires_services) {
    const ServiceState state = services_.get(svc).state();
    if (is_terminal(state)) {
      if (blocker) *blocker = svc;
      return Readiness::broken;
    }
    if (state != ServiceState::running) return Readiness::pending;
  }
  return Readiness::ready;
}

void TaskManager::evaluate(const std::string& uid,
                           std::vector<std::string>* batch) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;
  Active& active = it->second;
  const TaskState state = active.task->state();
  if (state != TaskState::created && state != TaskState::waiting) return;

  std::string blocker;
  switch (readiness(active, &blocker)) {
    case Readiness::broken:
      waiting_.erase(uid);
      fail_task(uid, strutil::cat("dependency ", blocker, " failed"));
      return;
    case Readiness::pending:
      if (state == TaskState::created) {
        set_state(active, TaskState::waiting);
      }
      waiting_.insert(uid);
      return;
    case Readiness::ready: {
      waiting_.erase(uid);
      const auto& staging = active.task->description().staging;
      const bool stages_in = std::any_of(
          staging.begin(), staging.end(), [](const StagingDirective& d) {
            return d.action == StagingDirective::Action::stage_in;
          });
      if (batch != nullptr && !stages_in) {
        batch->push_back(uid);  // scheduled by schedule_batch
      } else {
        to_staging_in(uid);
      }
      return;
    }
  }
}

void TaskManager::recheck_waiting() {
  // Copy: evaluate() mutates waiting_.
  const std::vector<std::string> snapshot(waiting_.begin(), waiting_.end());
  for (const auto& uid : snapshot) evaluate(uid);
}

// ---------------------------------------------------------------------------
// Staging in
// ---------------------------------------------------------------------------

void TaskManager::to_staging_in(const std::string& uid) {
  Active& active = active_for(uid);
  std::vector<std::string> inputs;
  for (const auto& directive : active.task->description().staging) {
    if (directive.action == StagingDirective::Action::stage_in) {
      inputs.push_back(directive.dataset);
    }
  }
  if (inputs.empty()) {
    to_scheduling(uid);
    return;
  }
  set_state(active, TaskState::staging_input);
  const std::string zone = active.pilot->cluster().name();
  data_.stage_all(inputs, zone,
                  [this, uid](bool ok, const std::string& failed_dataset) {
                    if (!ok) {
                      fail_task(uid, strutil::cat("stage-in of '",
                                                  failed_dataset,
                                                  "' failed"));
                      return;
                    }
                    to_scheduling(uid);
                  });
}

// ---------------------------------------------------------------------------
// Scheduling & execution
// ---------------------------------------------------------------------------

ScheduleRequest TaskManager::make_request(const std::string& uid,
                                          Active& active) {
  const TaskDescription& desc = active.task->description();
  ScheduleRequest request;
  request.uid = uid;
  request.cores = desc.cores;
  request.gpus = desc.gpus;
  request.mem_gb = desc.mem_gb;
  request.priority = desc.priority;
  request.granted = [this, uid](platform::Slot slot, platform::Node* node) {
    on_granted(uid, std::move(slot), node);
  };
  return request;
}

void TaskManager::to_scheduling(const std::string& uid) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.task->state())) return;
  // Oversized tasks fail individually; this runs inside an event-loop
  // callback, where a Scheduler::submit throw would abort the run.
  const TaskDescription& desc = active.task->description();
  if (!scheduler_.fits_pilot(active.pilot->uid(), desc.cores, desc.gpus,
                             desc.mem_gb)) {
    fail_task(uid, strutil::cat("request (", desc.cores, "c/", desc.gpus,
                                "g) cannot fit any node of pilot ",
                                active.pilot->uid()));
    return;
  }
  set_state(active, TaskState::scheduling);
  scheduler_.submit(active.pilot->uid(), make_request(uid, active));
}

void TaskManager::schedule_batch(Pilot& pilot,
                                 const std::vector<std::string>& uids) {
  std::vector<ScheduleRequest> requests;
  requests.reserve(uids.size());
  for (const auto& uid : uids) {
    const auto it = tasks_.find(uid);
    if (it == tasks_.end() || is_terminal(it->second.task->state())) {
      continue;
    }
    // Fail oversized tasks individually; Scheduler::submit_all
    // validates the whole batch up front, and one impossible request
    // must not strand its siblings in SCHEDULING.
    const TaskDescription& desc = it->second.task->description();
    if (!scheduler_.fits_pilot(pilot.uid(), desc.cores, desc.gpus,
                               desc.mem_gb)) {
      fail_task(uid, strutil::cat("request (", desc.cores, "c/", desc.gpus,
                                  "g) cannot fit any node of pilot ",
                                  pilot.uid()));
      continue;
    }
    set_state(it->second, TaskState::scheduling);
    requests.push_back(make_request(uid, it->second));
  }
  if (!requests.empty()) {
    scheduler_.submit_all(pilot.uid(), std::move(requests));
  }
}

void TaskManager::on_granted(const std::string& uid, platform::Slot slot,
                             platform::Node* node) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.task->state())) {
    scheduler_.release(active.pilot->uid(), slot);
    return;
  }
  active.task->set_slot(std::move(slot));
  active.slot_held = true;
  set_state(active, TaskState::scheduled);
  set_state(active, TaskState::launching);

  active.ctx = std::make_unique<ExecutionContext>(executor_.make_context(
      uid, node->host(), active.task->description().payload));
  active.ctx->data = &data_;
  executor_.launch(active.pilot->cluster(), 0,
                   [this, uid](sim::Duration) { on_launched(uid); });
}

void TaskManager::on_launched(const std::string& uid) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.task->state())) return;
  set_state(active, TaskState::running);

  active.payload = executor_.payloads().create(active.task->description());
  active.payload->run(
      *active.ctx,
      [this, uid](json::Value result) {
        on_payload_done(uid, std::move(result));
      },
      [this, uid](const std::string& error) { fail_task(uid, error); });
}

void TaskManager::on_payload_done(const std::string& uid,
                                  json::Value result) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.task->state())) return;
  active.task->set_result(std::move(result));
  to_staging_out(uid);
}

// ---------------------------------------------------------------------------
// Staging out & completion
// ---------------------------------------------------------------------------

void TaskManager::to_staging_out(const std::string& uid) {
  Active& active = active_for(uid);
  std::vector<StagingDirective> outputs;
  for (const auto& directive : active.task->description().staging) {
    if (directive.action == StagingDirective::Action::stage_out) {
      outputs.push_back(directive);
    }
  }
  if (outputs.empty()) {
    finish(uid);
    return;
  }
  set_state(active, TaskState::staging_output);
  const std::string pilot_zone = active.pilot->cluster().name();
  auto remaining = std::make_shared<std::size_t>(outputs.size());
  auto failed = std::make_shared<bool>(false);
  for (const auto& directive : outputs) {
    // Auto-register outputs the payload did not register itself.
    if (!data_.has(directive.dataset)) {
      const double bytes = active.task->description()
                               .payload.get_or("output_bytes", 1e6)
                               .as_double();
      data_.put(directive.dataset, bytes, pilot_zone);
    }
    const std::string dst =
        directive.zone.empty() ? pilot_zone : directive.zone;
    data_.stage(directive.dataset, dst,
                [this, uid, dataset = directive.dataset, remaining, failed](
                    bool ok, sim::Duration) {
                  if (!ok && !*failed) {
                    *failed = true;
                    fail_task(uid, strutil::cat("stage-out of '", dataset,
                                                "' failed"));
                  }
                  if (--(*remaining) == 0 && !*failed) finish(uid);
                });
  }
}

void TaskManager::finish(const std::string& uid) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.task->state())) return;
  release_slot(active);
  active.payload.reset();
  set_state(active, TaskState::done);
}

void TaskManager::release_slot(Active& active) {
  if (active.slot_held) {
    scheduler_.release(active.pilot->uid(), active.task->slot());
    active.slot_held = false;
  }
}

void TaskManager::fail_task(const std::string& uid,
                            const std::string& error) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.task->state())) return;
  log_.error(strutil::cat(uid, ": ", error));
  active.task->set_error(error);
  waiting_.erase(uid);
  release_slot(active);
  active.payload.reset();
  set_state(active, TaskState::failed);
}

bool TaskManager::cancel(const std::string& uid) {
  Active& active = active_for(uid);
  const TaskState state = active.task->state();
  switch (state) {
    case TaskState::created:
    case TaskState::waiting:
    case TaskState::staging_input:
    case TaskState::scheduling: {
      if (state == TaskState::scheduling) {
        scheduler_.cancel(active.pilot->uid(), uid);
      }
      waiting_.erase(uid);
      set_state(active, TaskState::canceled);
      return true;
    }
    default: return false;
  }
}

}  // namespace ripple::core
