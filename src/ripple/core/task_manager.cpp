#include "ripple/core/task_manager.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "ripple/common/error.hpp"
#include "ripple/common/ids.hpp"
#include "ripple/common/strutil.hpp"
#include "ripple/data/placement_advisor.hpp"
#include "ripple/platform/cluster.hpp"

namespace ripple::core {

namespace {

/// Datasets a description stages in — the task's input footprint.
std::vector<std::string> stage_in_datasets(const TaskDescription& desc) {
  std::vector<std::string> inputs;
  for (const auto& directive : desc.staging) {
    if (directive.action == StagingDirective::Action::stage_in) {
      inputs.push_back(directive.dataset);
    }
  }
  return inputs;
}

}  // namespace

TaskManager::TaskManager(Runtime& runtime, Scheduler& scheduler,
                         Executor& executor, DataManager& data,
                         ServiceManager& services)
    : runtime_(runtime),
      scheduler_(scheduler),
      executor_(executor),
      data_(data),
      services_(services),
      log_(runtime.make_logger("task_manager")),
      restart_rng_(runtime.rng().fork("task_restart")) {
  // Re-evaluate waiting tasks whenever any entity changes state: a
  // dependency may have completed or a required service become RUNNING.
  runtime_.pubsub().subscribe(
      "state", [this](const std::string&, const json::Value& event) {
        const std::string kind = event.at("kind").as_string();
        if (kind == "task" || kind == "service") recheck_waiting();
      });
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

TaskManager::Active& TaskManager::active_for(const std::string& uid) {
  const auto it = tasks_.find(uid);
  ensure(it != tasks_.end(), Errc::not_found,
         strutil::cat("unknown task '", uid, "'"));
  return it->second;
}

const TaskManager::Active& TaskManager::active_for(
    const std::string& uid) const {
  const auto it = tasks_.find(uid);
  ensure(it != tasks_.end(), Errc::not_found,
         strutil::cat("unknown task '", uid, "'"));
  return it->second;
}

const Task& TaskManager::get(const std::string& uid) const {
  return *active_for(uid).task;
}

Task& TaskManager::get_mutable(const std::string& uid) {
  return *active_for(uid).task;
}

bool TaskManager::exists(const std::string& uid) const {
  return tasks_.count(uid) != 0;
}

std::vector<std::string> TaskManager::uids() const {
  std::vector<std::string> out;
  out.reserve(tasks_.size());
  for (const auto& [uid, active] : tasks_) out.push_back(uid);
  return out;
}

std::size_t TaskManager::count_in_state(TaskState state) const {
  std::size_t n = 0;
  for (const auto& [uid, active] : tasks_) {
    if (active.task->state() == state) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// State bookkeeping
// ---------------------------------------------------------------------------

void TaskManager::set_state(Active& active, TaskState state) {
  active.task->set_state(state, runtime_.loop().now());
  runtime_.publish_state("task", active.task->uid(), to_string(state));
  if (is_terminal(state)) recheck_watchers();
}

void TaskManager::recheck_watchers() {
  for (std::size_t i = 0; i < watchers_.size();) {
    DoneWatcher& watcher = watchers_[i];
    bool all_terminal = true;
    bool all_done = true;
    for (const auto& uid : watcher.uids) {
      const TaskState state = get(uid).state();
      if (!is_terminal(state)) all_terminal = false;
      if (state != TaskState::done) all_done = false;
    }
    if (all_terminal) {
      auto callback = std::move(watcher.on_done);
      watchers_.erase(watchers_.begin() + static_cast<std::ptrdiff_t>(i));
      runtime_.loop().post(
          [callback = std::move(callback), all_done] { callback(all_done); });
    } else {
      ++i;
    }
  }
}

void TaskManager::when_done(std::vector<std::string> uids,
                            std::function<void(bool)> on_done) {
  ensure(static_cast<bool>(on_done), Errc::invalid_argument,
         "when_done: empty callback");
  for (const auto& uid : uids) {
    ensure(exists(uid), Errc::not_found,
           strutil::cat("when_done: unknown task '", uid, "'"));
  }
  watchers_.push_back(DoneWatcher{std::move(uids), std::move(on_done)});
  recheck_watchers();
}

// ---------------------------------------------------------------------------
// Submission & readiness
// ---------------------------------------------------------------------------

std::string TaskManager::create_task(Pilot& pilot, TaskDescription desc) {
  desc.validate();
  ensure(executor_.payloads().has(desc.kind), Errc::not_found,
         strutil::cat("no payload factory for kind '", desc.kind, "'"));
  for (const auto& dep : desc.depends_on) {
    ensure(exists(dep), Errc::not_found,
           strutil::cat("dependency '", dep, "' does not exist"));
  }
  for (const auto& svc : desc.requires_services) {
    ensure(services_.exists(svc), Errc::not_found,
           strutil::cat("required service '", svc, "' does not exist"));
  }

  const std::string uid = runtime_.make_uid("task");
  Active active;
  active.task = std::make_unique<Task>(uid, std::move(desc));
  active.task->set_pilot_uid(pilot.uid());
  active.pilot = &pilot;
  // The root span covers the task's whole lifetime; the phase spans
  // (queue-wait, stage-in/out, run, recovery) nest under it.
  if (runtime_.tracer().enabled()) {
    active.trace_task =
        runtime_.tracer().begin(active.task->description().name, "task",
                                uid, runtime_.loop().now());
  }
  runtime_.counters().add("task.submitted");
  tasks_.emplace(uid, std::move(active));
  runtime_.publish_state("task", uid, to_string(TaskState::created));
  return uid;
}

std::string TaskManager::submit(Pilot& pilot, TaskDescription desc) {
  const std::string uid = create_task(pilot, std::move(desc));
  runtime_.loop().post([this, uid] { evaluate(uid); });
  return uid;
}

std::string TaskManager::submit_any(const std::vector<Pilot*>& candidates,
                                    TaskDescription desc) {
  ensure(!candidates.empty(), Errc::invalid_argument,
         "submit_any: no candidate pilots");
  // Contention-aware: estimated stage-in time at live link rates plus
  // the candidate's queue depth, not just resident bytes.
  const data::PlacementAdvisor advisor(data_.catalog(), &data_.engine(),
                                       &scheduler_);
  Pilot* pilot = advisor.best(candidates, stage_in_datasets(desc));
  return submit(*pilot, std::move(desc));
}

std::vector<std::string> TaskManager::submit_all(
    Pilot& pilot, std::vector<TaskDescription> descs) {
  std::vector<std::string> out;
  out.reserve(descs.size());
  // One deferred pass: evaluate everything, then enter the scheduler as
  // a single batch so the waiting queue is scanned once, not N times.
  // Posted even when a later description throws — already-created tasks
  // must still be evaluated, as they were under per-task submission.
  const auto post_batch = [this, &pilot](std::vector<std::string> uids) {
    if (uids.empty()) return;
    runtime_.loop().post([this, &pilot, uids = std::move(uids)] {
      std::vector<std::string> ready;
      for (const auto& uid : uids) evaluate(uid, &ready);
      schedule_batch(pilot, ready);
    });
  };
  try {
    for (auto& desc : descs) {
      out.push_back(create_task(pilot, std::move(desc)));
    }
  } catch (...) {
    post_batch(out);
    throw;
  }
  post_batch(out);
  return out;
}

TaskManager::Readiness TaskManager::readiness(const Active& active,
                                              std::string* blocker) const {
  const TaskDescription& desc = active.task->description();
  for (const auto& dep : desc.depends_on) {
    const TaskState state = get(dep).state();
    if (state == TaskState::failed || state == TaskState::canceled) {
      if (blocker) *blocker = dep;
      return Readiness::broken;
    }
    if (state != TaskState::done) return Readiness::pending;
  }
  for (const auto& svc : desc.requires_services) {
    const ServiceState state = services_.get(svc).state();
    if (is_terminal(state)) {
      if (blocker) *blocker = svc;
      return Readiness::broken;
    }
    if (state != ServiceState::running) return Readiness::pending;
  }
  return Readiness::ready;
}

void TaskManager::evaluate(const std::string& uid,
                           std::vector<std::string>* batch) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;
  Active& active = it->second;
  const TaskState state = active.task->state();
  if (state != TaskState::created && state != TaskState::waiting) return;

  std::string blocker;
  switch (readiness(active, &blocker)) {
    case Readiness::broken:
      waiting_.erase(uid);
      fail_task(uid, strutil::cat("dependency ", blocker, " failed"));
      return;
    case Readiness::pending:
      if (state == TaskState::created) {
        set_state(active, TaskState::waiting);
      }
      waiting_.insert(uid);
      return;
    case Readiness::ready: {
      waiting_.erase(uid);
      const auto& staging = active.task->description().staging;
      const bool stages_in = std::any_of(
          staging.begin(), staging.end(), [](const StagingDirective& d) {
            return d.action == StagingDirective::Action::stage_in;
          });
      if (batch != nullptr && !stages_in) {
        batch->push_back(uid);  // scheduled by schedule_batch
      } else {
        to_staging_in(uid);
      }
      return;
    }
  }
}

void TaskManager::recheck_waiting() {
  // Copy: evaluate() mutates waiting_.
  const std::vector<std::string> snapshot(waiting_.begin(), waiting_.end());
  for (const auto& uid : snapshot) evaluate(uid);
}

// ---------------------------------------------------------------------------
// Staging in
// ---------------------------------------------------------------------------

void TaskManager::to_staging_in(const std::string& uid) {
  Active& active = active_for(uid);
  const std::vector<std::string> inputs =
      stage_in_datasets(active.task->description());
  if (inputs.empty()) {
    to_scheduling(uid);
    return;
  }
  set_state(active, TaskState::staging_input);
  begin_stage_in(uid, active);
  // Staging overlaps the queue wait: enter the scheduler immediately;
  // launch is gated on both the grant and the staged inputs.
  to_scheduling(uid);
}

void TaskManager::begin_stage_in(const std::string& uid, Active& active) {
  const std::vector<std::string> inputs =
      stage_in_datasets(active.task->description());
  if (inputs.empty()) return;
  active.stage_in_pending = true;
  if (runtime_.tracer().enabled() && active.trace_stage == 0) {
    active.trace_stage =
        runtime_.tracer().begin("stage-in", "data", uid,
                                runtime_.loop().now(), active.trace_task);
  }
  const std::string zone = active.pilot->cluster().name();
  const std::uint64_t epoch = active.epoch;
  const std::string tenant = active.task->description().tenant;
  active.stage_batch = data_.stage_all_tracked(
      inputs, zone,
      [this, uid, inputs, zone, epoch](bool ok,
                                       const std::string& failed_dataset) {
        const auto it = tasks_.find(uid);
        if (it == tasks_.end()) return;
        Active& active = it->second;
        if (active.epoch != epoch) return;  // attempt was interrupted
        active.stage_in_pending = false;
        active.stage_batch.reset();
        runtime_.tracer().end(active.trace_stage, runtime_.loop().now());
        active.trace_stage = 0;
        if (is_terminal(active.task->state())) return;
        if (!ok) {
          fail_task(uid, strutil::cat("stage-in of '", failed_dataset,
                                      "' failed"));
          return;
        }
        // Pin the landed inputs until the task is terminal: while it
        // waits for its grant, store pressure must not evict them. An
        // input already gone (evicted between its landing and the
        // batch completing) is a staging failure.
        active.input_pin_zone = zone;
        for (const auto& name : inputs) {
          if (!data_.available_in(name, zone)) {
            fail_task(uid, strutil::cat("stage-in of '", name,
                                        "' was evicted before launch"));
            return;
          }
          data_.catalog().pin(name, zone,
                              active.task->description().tenant);
          active.input_pins.push_back(name);
        }
        // The grant may have arrived while the data was in flight.
        if (active.slot_held &&
            active.task->state() == TaskState::scheduled) {
          begin_launch(uid);
        }
      },
      tenant);
}

// ---------------------------------------------------------------------------
// Scheduling & execution
// ---------------------------------------------------------------------------

ScheduleRequest TaskManager::make_request(const std::string& uid,
                                          Active& active) {
  const TaskDescription& desc = active.task->description();
  ScheduleRequest request;
  request.uid = uid;
  request.cores = desc.cores;
  request.gpus = desc.gpus;
  request.mem_gb = desc.mem_gb;
  request.priority = desc.priority;
  request.tenant = desc.tenant;
  request.input_datasets = stage_in_datasets(desc);
  request.input_bytes = data_.bytes_required(
      request.input_datasets, active.pilot->cluster().name());
  const std::uint64_t epoch = active.epoch;
  const std::string pilot_uid = active.pilot->uid();
  request.granted = [this, uid, epoch, pilot_uid](platform::Slot slot,
                                                  platform::Node* node) {
    on_granted(uid, epoch, pilot_uid, std::move(slot), node);
  };
  return request;
}

void TaskManager::to_scheduling(const std::string& uid) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.task->state())) return;
  // Oversized tasks fail individually; this runs inside an event-loop
  // callback, where a Scheduler::submit throw would abort the run.
  const TaskDescription& desc = active.task->description();
  if (!scheduler_.fits_pilot(active.pilot->uid(), desc.cores, desc.gpus,
                             desc.mem_gb)) {
    fail_task(uid, strutil::cat("request (", desc.cores, "c/", desc.gpus,
                                "g) cannot fit any node of pilot ",
                                active.pilot->uid()));
    return;
  }
  set_state(active, TaskState::scheduling);
  if (runtime_.tracer().enabled() && active.trace_queue == 0) {
    active.trace_queue =
        runtime_.tracer().begin("queue-wait", "queue", uid,
                                runtime_.loop().now(), active.trace_task);
  }
  scheduler_.submit(active.pilot->uid(), make_request(uid, active));
}

void TaskManager::schedule_batch(Pilot& pilot,
                                 const std::vector<std::string>& uids) {
  std::vector<ScheduleRequest> requests;
  requests.reserve(uids.size());
  for (const auto& uid : uids) {
    const auto it = tasks_.find(uid);
    if (it == tasks_.end() || is_terminal(it->second.task->state())) {
      continue;
    }
    // Fail oversized tasks individually; Scheduler::submit_all
    // validates the whole batch up front, and one impossible request
    // must not strand its siblings in SCHEDULING.
    const TaskDescription& desc = it->second.task->description();
    if (!scheduler_.fits_pilot(pilot.uid(), desc.cores, desc.gpus,
                               desc.mem_gb)) {
      fail_task(uid, strutil::cat("request (", desc.cores, "c/", desc.gpus,
                                  "g) cannot fit any node of pilot ",
                                  pilot.uid()));
      continue;
    }
    set_state(it->second, TaskState::scheduling);
    if (runtime_.tracer().enabled() && it->second.trace_queue == 0) {
      it->second.trace_queue = runtime_.tracer().begin(
          "queue-wait", "queue", uid, runtime_.loop().now(),
          it->second.trace_task);
    }
    requests.push_back(make_request(uid, it->second));
  }
  if (!requests.empty()) {
    scheduler_.submit_all(pilot.uid(), std::move(requests));
  }
}

void TaskManager::on_granted(const std::string& uid, std::uint64_t epoch,
                             const std::string& pilot_uid,
                             platform::Slot slot, platform::Node* node) {
  const auto it = tasks_.find(uid);
  const auto give_back = [this, &pilot_uid](const platform::Slot& s) {
    if (scheduler_.has_pilot(pilot_uid)) scheduler_.release(pilot_uid, s);
  };
  if (it == tasks_.end()) {
    give_back(slot);
    return;
  }
  Active& active = it->second;
  if (is_terminal(active.task->state()) || active.epoch != epoch) {
    give_back(slot);
    return;
  }
  if (!node->alive() || slot.incarnation != node->incarnation()) {
    // The node died between placement and this (posted) delivery; the
    // slot died with it. Requeue — the capacity index now excludes the
    // dead node, so the replacement grant lands elsewhere.
    scheduler_.submit(pilot_uid, make_request(uid, active));
    return;
  }
  active.task->set_slot(std::move(slot));
  active.slot_held = true;
  active.node = node;
  set_state(active, TaskState::scheduled);
  runtime_.tracer().end(active.trace_queue, runtime_.loop().now());
  active.trace_queue = 0;
  if (active.stage_in_pending) return;  // launch once the inputs land
  begin_launch(uid);
}

void TaskManager::begin_launch(const std::string& uid) {
  Active& active = active_for(uid);
  set_state(active, TaskState::launching);
  // The run span covers launch latency plus payload execution.
  if (runtime_.tracer().enabled() && active.trace_run == 0) {
    active.trace_run =
        runtime_.tracer().begin("run", "compute", uid,
                                runtime_.loop().now(), active.trace_task);
  }
  active.ctx = std::make_unique<ExecutionContext>(executor_.make_context(
      uid, active.node->host(), active.task->description().payload));
  active.ctx->data = &data_;
  active.ctx->speed_factor = active.node->speed_factor();
  const std::uint64_t epoch = active.epoch;
  executor_.launch(active.pilot->cluster(), 0,
                   [this, uid, epoch](sim::Duration) {
                     on_launched(uid, epoch);
                   });
}

void TaskManager::on_launched(const std::string& uid, std::uint64_t epoch) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.task->state()) || active.epoch != epoch) return;
  set_state(active, TaskState::running);

  active.payload = executor_.payloads().create(active.task->description());
  active.payload->run(
      *active.ctx,
      [this, uid, epoch](json::Value result) {
        on_payload_done(uid, epoch, std::move(result), /*from_spec=*/false);
      },
      [this, uid, epoch](const std::string& error) {
        on_payload_failed(uid, epoch, error, /*from_spec=*/false);
      });

  if (speculation_.enabled) {
    const sim::Duration wait =
        std::max(speculation_.min_delay,
                 active.task->description().duration.mean() *
                     speculation_.latency_multiple);
    active.spec_timer = runtime_.loop().call_after(
        wait, [this, uid, epoch] { maybe_speculate(uid, epoch); });
  }
}

void TaskManager::on_payload_failed(const std::string& uid,
                                    std::uint64_t epoch,
                                    const std::string& error,
                                    bool from_spec) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.task->state()) || active.epoch != epoch) return;
  if (from_spec) {
    // The duplicate failed; the primary attempt is still the task.
    cancel_speculation(active, scheduler_.has_pilot(active.pilot->uid()));
    record_recovery(uid, "spec_failed");
    return;
  }
  fail_task(uid, error);
}

void TaskManager::on_payload_done(const std::string& uid,
                                  std::uint64_t epoch, json::Value result,
                                  bool from_spec) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.task->state()) || active.epoch != epoch) return;
  // First finisher wins. Bump the epoch so the loser's uncancellable
  // completion timer drops itself at the guard above.
  ++active.epoch;
  if (from_spec) {
    ++speculation_wins_;
    record_recovery(uid, "spec_win");
    runtime_.counters().add("task.spec_wins");
    runtime_.tracer().instant("spec-win", "task", uid,
                              runtime_.loop().now(), active.trace_task);
    // Promote the duplicate: its slot becomes the task's slot, the
    // straggling primary's slot goes back to the scheduler.
    release_slot(active);
    active.task->set_slot(active.spec_slot);
    active.node = active.spec_node;
    active.slot_held = active.spec_slot_held;
    active.ctx = std::move(active.spec_ctx);
    active.payload = std::move(active.spec_payload);
    active.spec_slot_held = false;
    active.spec_node = nullptr;
    if (active.spec_timer.valid()) {
      runtime_.loop().cancel(active.spec_timer);
      active.spec_timer = {};
    }
    active.spec_queued = false;
  } else {
    cancel_speculation(active, scheduler_.has_pilot(active.pilot->uid()));
  }
  runtime_.tracer().end(active.trace_run, runtime_.loop().now());
  active.trace_run = 0;
  active.task->set_result(std::move(result));
  // The payload has read its inputs: stop pinning them, so a finite
  // store can evict them to make room for this task's own outputs.
  release_input_pins(active);
  to_staging_out(uid);
}

// ---------------------------------------------------------------------------
// Speculation (straggler mitigation)
// ---------------------------------------------------------------------------

void TaskManager::maybe_speculate(const std::string& uid,
                                  std::uint64_t epoch) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;
  Active& active = it->second;
  active.spec_timer = {};
  if (active.epoch != epoch) return;
  if (active.task->state() != TaskState::running) return;
  if (active.spec_queued || active.spec_slot_held) return;
  const std::string pilot_uid = active.pilot->uid();
  if (!scheduler_.has_pilot(pilot_uid)) return;

  const TaskDescription& desc = active.task->description();
  ScheduleRequest request;
  request.uid = uid + "#spec";
  request.cores = desc.cores;
  request.gpus = desc.gpus;
  request.mem_gb = desc.mem_gb;
  request.priority = desc.priority;
  request.tenant = desc.tenant;
  request.granted = [this, uid, epoch, pilot_uid](platform::Slot slot,
                                                   platform::Node* node) {
    on_spec_granted(uid, epoch, pilot_uid, std::move(slot), node);
  };
  scheduler_.submit(pilot_uid, std::move(request));
  active.spec_queued = true;
  record_recovery(uid, "speculate");
  runtime_.counters().add("task.speculations");
  runtime_.tracer().instant("speculate", "task", uid,
                            runtime_.loop().now(), active.trace_task);
}

void TaskManager::on_spec_granted(const std::string& uid,
                                  std::uint64_t epoch,
                                  const std::string& pilot_uid,
                                  platform::Slot slot,
                                  platform::Node* node) {
  const auto it = tasks_.find(uid);
  const auto give_back = [this, &pilot_uid](const platform::Slot& s) {
    if (scheduler_.has_pilot(pilot_uid)) scheduler_.release(pilot_uid, s);
  };
  if (it == tasks_.end()) {
    give_back(slot);
    return;
  }
  Active& active = it->second;
  if (is_terminal(active.task->state()) || active.epoch != epoch ||
      active.task->state() != TaskState::running) {
    give_back(slot);
    active.spec_queued = false;
    return;
  }
  active.spec_queued = false;
  if (!node->alive() || slot.incarnation != node->incarnation()) {
    return;  // the duplicate's node died in flight; drop the attempt
  }
  active.spec_slot = std::move(slot);
  active.spec_node = node;
  active.spec_slot_held = true;
  ++speculations_;
  active.spec_ctx = std::make_unique<ExecutionContext>(
      executor_.make_context(uid + "#spec", node->host(),
                             active.task->description().payload));
  active.spec_ctx->data = &data_;
  active.spec_ctx->speed_factor = node->speed_factor();
  executor_.launch(active.pilot->cluster(), 0,
                   [this, uid, epoch](sim::Duration) {
                     on_spec_launched(uid, epoch);
                   });
}

void TaskManager::on_spec_launched(const std::string& uid,
                                   std::uint64_t epoch) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.task->state()) || active.epoch != epoch) return;
  if (!active.spec_slot_held || !active.spec_ctx) return;
  active.spec_payload =
      executor_.payloads().create(active.task->description());
  active.spec_payload->run(
      *active.spec_ctx,
      [this, uid, epoch](json::Value result) {
        on_payload_done(uid, epoch, std::move(result), /*from_spec=*/true);
      },
      [this, uid, epoch](const std::string& error) {
        on_payload_failed(uid, epoch, error, /*from_spec=*/true);
      });
}

void TaskManager::cancel_speculation(Active& active, bool pilot_alive) {
  if (active.spec_timer.valid()) {
    runtime_.loop().cancel(active.spec_timer);
    active.spec_timer = {};
  }
  const std::string& uid = active.task->uid();
  if (active.spec_queued) {
    if (pilot_alive) {
      scheduler_.cancel(active.pilot->uid(), uid + "#spec");
    }
    active.spec_queued = false;
  }
  if (active.spec_slot_held) {
    if (pilot_alive && scheduler_.has_pilot(active.pilot->uid())) {
      scheduler_.release(active.pilot->uid(), active.spec_slot);
    }
    active.spec_slot_held = false;
  }
  active.spec_payload.reset();
  active.spec_ctx.reset();
  active.spec_node = nullptr;
}

// ---------------------------------------------------------------------------
// Failure handling & re-placement
// ---------------------------------------------------------------------------

void TaskManager::record_recovery(const std::string& uid,
                                  const std::string& event) {
  const std::string line = strutil::cat(
      strutil::format_fixed(runtime_.loop().now(), 6), " ", uid, " ", event);
  recovery_log_.push_back(line);
  recovery_hash_ = common::fnv1a(recovery_hash_, line);
}

void TaskManager::interrupt_task(const std::string& uid,
                                 const std::string& reason,
                                 Pilot* replacement, bool pilot_alive) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.task->state())) return;
  // Invalidate every callback of the interrupted attempt (payload
  // completions cannot be cancelled, grants may be posted in flight).
  ++active.epoch;
  close_phase_spans(active);
  if (active.restart_timer.valid()) {
    runtime_.loop().cancel(active.restart_timer);
    active.restart_timer = {};
  }
  cancel_speculation(active, pilot_alive);
  if (active.task->state() == TaskState::scheduling && pilot_alive &&
      scheduler_.has_pilot(active.pilot->uid())) {
    scheduler_.cancel(active.pilot->uid(), uid);
  }
  if (active.stage_batch) {
    data_.cancel_batch(active.stage_batch);
    active.stage_batch.reset();
  }
  active.stage_in_pending = false;
  release_input_pins(active);
  if (active.slot_held) {
    // Release before any re-bind: the slot belongs to the old pilot.
    if (pilot_alive && scheduler_.has_pilot(active.pilot->uid())) {
      scheduler_.release(active.pilot->uid(), active.task->slot());
    }
    active.slot_held = false;
  }
  active.payload.reset();
  active.ctx.reset();
  active.node = nullptr;
  if (replacement != nullptr) {
    active.pilot = replacement;
    active.task->set_pilot_uid(replacement->uid());
  }
  if (active.restarts >= restart_policy_.max_restarts) {
    fail_task(uid, strutil::cat(reason, " (restart budget exhausted after ",
                                active.restarts, " restarts)"));
    return;
  }
  ++active.restarts;
  ++restarts_total_;
  double step = restart_policy_.backoff *
                std::pow(restart_policy_.multiplier, active.restarts - 1);
  step = std::min(step, restart_policy_.max_backoff);
  const double delay =
      restart_policy_.jitter ? step * restart_rng_.uniform(0.5, 1.5) : step;
  set_state(active, TaskState::scheduling);
  record_recovery(uid,
                  strutil::cat("restart", active.restarts, " ", reason));
  runtime_.counters().add("task.restarts");
  // The recovery span covers the backoff wait until re-submission.
  if (runtime_.tracer().enabled()) {
    active.trace_recover = runtime_.tracer().begin(
        "recovery", "recovery", uid, runtime_.loop().now(),
        active.trace_task, {{"reason", reason}});
  }
  const std::uint64_t epoch = active.epoch;
  active.restart_timer = runtime_.loop().call_after(
      delay, [this, uid, epoch] { resume_restart(uid, epoch); });
}

void TaskManager::resume_restart(const std::string& uid,
                                 std::uint64_t epoch) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.task->state()) || active.epoch != epoch) return;
  active.restart_timer = {};
  const TaskDescription& desc = active.task->description();
  if (!scheduler_.has_pilot(active.pilot->uid()) ||
      !scheduler_.fits_pilot(active.pilot->uid(), desc.cores, desc.gpus,
                             desc.mem_gb)) {
    fail_task(uid, strutil::cat("restart: pilot ", active.pilot->uid(),
                                " cannot host the task any more"));
    return;
  }
  runtime_.tracer().end(active.trace_recover, runtime_.loop().now());
  active.trace_recover = 0;
  if (runtime_.tracer().enabled() && active.trace_queue == 0) {
    active.trace_queue =
        runtime_.tracer().begin("queue-wait", "queue", uid,
                                runtime_.loop().now(), active.trace_task);
  }
  // Re-stage inputs: datasets still resident in the pilot's zone land
  // instantly, anything lost with a failed store is re-fetched.
  begin_stage_in(uid, active);
  scheduler_.submit(active.pilot->uid(), make_request(uid, active));
}

std::size_t TaskManager::handle_node_failure(const platform::Node& node) {
  std::vector<std::string> snapshot;
  snapshot.reserve(tasks_.size());
  for (const auto& [uid, active] : tasks_) snapshot.push_back(uid);
  std::size_t interrupted = 0;
  for (const auto& uid : snapshot) {
    const auto it = tasks_.find(uid);
    if (it == tasks_.end()) continue;
    Active& active = it->second;
    if (is_terminal(active.task->state())) continue;
    if (active.spec_node == &node && active.spec_slot_held) {
      cancel_speculation(active, scheduler_.has_pilot(active.pilot->uid()));
      record_recovery(uid, "spec_lost_node");
    }
    if (active.node != &node || !active.slot_held) continue;
    // STAGING_OUTPUT attempts keep their results: outputs are zone-level
    // transfers that survive the node; the stale slot release is a no-op.
    if (active.task->state() == TaskState::staging_output) continue;
    interrupt_task(uid, strutil::cat("node ", node.id(), " failed"),
                   /*replacement=*/nullptr, /*pilot_alive=*/true);
    ++interrupted;
  }
  return interrupted;
}

std::size_t TaskManager::handle_pilot_loss(
    const std::string& pilot_uid, const std::vector<Pilot*>& survivors) {
  std::vector<std::string> snapshot;
  snapshot.reserve(tasks_.size());
  for (const auto& [uid, active] : tasks_) snapshot.push_back(uid);
  std::size_t moved = 0;
  for (const auto& uid : snapshot) {
    const auto it = tasks_.find(uid);
    if (it == tasks_.end()) continue;
    Active& active = it->second;
    if (is_terminal(active.task->state())) continue;
    if (active.pilot->uid() != pilot_uid) continue;
    const TaskDescription& desc = active.task->description();
    Pilot* replacement = nullptr;
    for (Pilot* candidate : survivors) {
      if (candidate == nullptr || candidate->uid() == pilot_uid) continue;
      if (scheduler_.has_pilot(candidate->uid()) &&
          scheduler_.fits_pilot(candidate->uid(), desc.cores, desc.gpus,
                                desc.mem_gb)) {
        replacement = candidate;
        break;
      }
    }
    if (replacement == nullptr) {
      fail_task(uid, strutil::cat("pilot ", pilot_uid,
                                  " preempted, no surviving pilot fits"));
      continue;
    }
    const TaskState state = active.task->state();
    if (state == TaskState::created || state == TaskState::waiting ||
        state == TaskState::staging_output) {
      // Not holding pilot resources worth restarting for: just re-bind.
      // (A staging-out attempt's outputs are zone-level and keep going;
      // its slot died with the pilot, so only drop the local handle.)
      active.slot_held = false;
      active.pilot = replacement;
      active.task->set_pilot_uid(replacement->uid());
      record_recovery(uid, strutil::cat("rebind ", replacement->uid()));
      ++moved;
      continue;
    }
    interrupt_task(uid, strutil::cat("pilot ", pilot_uid, " preempted"),
                   replacement, /*pilot_alive=*/false);
    ++moved;
  }
  return moved;
}

// ---------------------------------------------------------------------------
// Staging out & completion
// ---------------------------------------------------------------------------

void TaskManager::to_staging_out(const std::string& uid) {
  Active& active = active_for(uid);
  std::vector<StagingDirective> outputs;
  for (const auto& directive : active.task->description().staging) {
    if (directive.action == StagingDirective::Action::stage_out) {
      outputs.push_back(directive);
    }
  }
  if (outputs.empty()) {
    finish(uid);
    return;
  }
  set_state(active, TaskState::staging_output);
  if (runtime_.tracer().enabled() && active.trace_stage == 0) {
    active.trace_stage =
        runtime_.tracer().begin("stage-out", "data", uid,
                                runtime_.loop().now(), active.trace_task);
  }
  const std::string pilot_zone = active.pilot->cluster().name();
  // Register products first: a full store rejecting the output is a
  // task failure, not a crash (this runs inside an event-loop callback,
  // where a throw would abort the whole run).
  for (const auto& directive : outputs) {
    if (data_.has(directive.dataset)) continue;
    const double bytes = active.task->description()
                             .payload.get_or("output_bytes", 1e6)
                             .as_double();
    try {
      data_.put(directive.dataset, bytes, pilot_zone);
    } catch (const Error& error) {
      fail_task(uid, strutil::cat("stage-out of '", directive.dataset,
                                  "' failed: ", error.what()));
      return;
    }
  }
  // Tracked like stage-in: the first failed output cancels the task's
  // surviving output transfers instead of leaving them running
  // untracked (transfers shared with other callers keep running).
  std::vector<std::pair<std::string, std::string>> targets;
  targets.reserve(outputs.size());
  for (const auto& directive : outputs) {
    targets.emplace_back(directive.dataset, directive.zone.empty()
                                                ? pilot_zone
                                                : directive.zone);
  }
  active.stage_batch = data_.stage_all_tracked(
      targets, [this, uid](bool ok, const std::string& failed_dataset) {
        const auto it = tasks_.find(uid);
        if (it == tasks_.end()) return;
        it->second.stage_batch.reset();
        if (is_terminal(it->second.task->state())) return;
        if (!ok) {
          fail_task(uid, strutil::cat("stage-out of '", failed_dataset,
                                      "' failed"));
          return;
        }
        runtime_.tracer().end(it->second.trace_stage,
                              runtime_.loop().now());
        it->second.trace_stage = 0;
        finish(uid);
      },
      active.task->description().tenant);
}

void TaskManager::finish(const std::string& uid) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.task->state())) return;
  release_slot(active);
  release_input_pins(active);
  active.payload.reset();
  close_phase_spans(active);
  close_task_span(active, "done");
  runtime_.counters().add("task.done");
  set_state(active, TaskState::done);
}

void TaskManager::close_phase_spans(Active& active) {
  const double now = runtime_.loop().now();
  auto& tracer = runtime_.tracer();
  tracer.end(active.trace_queue, now);
  tracer.end(active.trace_stage, now);
  tracer.end(active.trace_run, now);
  tracer.end(active.trace_recover, now);
  active.trace_queue = 0;
  active.trace_stage = 0;
  active.trace_run = 0;
  active.trace_recover = 0;
}

void TaskManager::close_task_span(Active& active, const char* state) {
  if (active.trace_task == 0) return;
  runtime_.tracer().arg(active.trace_task, "state", state);
  runtime_.tracer().end(active.trace_task, runtime_.loop().now());
  active.trace_task = 0;
}

void TaskManager::release_slot(Active& active) {
  if (active.slot_held) {
    if (scheduler_.has_pilot(active.pilot->uid())) {
      scheduler_.release(active.pilot->uid(), active.task->slot());
    }
    active.slot_held = false;
  }
}

void TaskManager::release_input_pins(Active& active) {
  for (const auto& name : active.input_pins) {
    // Unpin under the same tenant that pinned — per-tenant pin counts
    // must pair exactly.
    data_.catalog().unpin(name, active.input_pin_zone,
                          active.task->description().tenant);
  }
  active.input_pins.clear();
}

void TaskManager::fail_task(const std::string& uid,
                            const std::string& error) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.task->state())) return;
  log_.error(strutil::cat(uid, ": ", error));
  active.task->set_error(error);
  waiting_.erase(uid);
  if (active.restart_timer.valid()) {
    runtime_.loop().cancel(active.restart_timer);
    active.restart_timer = {};
  }
  cancel_speculation(active, scheduler_.has_pilot(active.pilot->uid()));
  if (active.task->state() == TaskState::scheduling &&
      scheduler_.has_pilot(active.pilot->uid())) {
    // Staging can fail while the request queues (overlapped stage-in);
    // drop the queue entry so the scheduler never grants a dead task.
    scheduler_.cancel(active.pilot->uid(), uid);
  }
  if (active.stage_batch) {
    data_.cancel_batch(active.stage_batch);
    active.stage_batch.reset();
    active.stage_in_pending = false;
  }
  release_slot(active);
  release_input_pins(active);
  active.payload.reset();
  close_phase_spans(active);
  close_task_span(active, "failed");
  runtime_.counters().add("task.failed");
  set_state(active, TaskState::failed);
}

bool TaskManager::cancel(const std::string& uid) {
  Active& active = active_for(uid);
  const TaskState state = active.task->state();
  const auto abandon_staging = [this, &active] {
    if (active.stage_batch) {
      data_.cancel_batch(active.stage_batch);
      active.stage_batch.reset();
    }
    active.stage_in_pending = false;
  };
  switch (state) {
    case TaskState::created:
    case TaskState::waiting:
    case TaskState::staging_input:
    case TaskState::scheduling: {
      if (state == TaskState::scheduling) {
        scheduler_.cancel(active.pilot->uid(), uid);
      }
      abandon_staging();
      release_input_pins(active);
      waiting_.erase(uid);
      close_phase_spans(active);
      close_task_span(active, "canceled");
      set_state(active, TaskState::canceled);
      return true;
    }
    case TaskState::scheduled: {
      // Launch is imminent unless the task is parked on overlapped
      // stage-in; in that window the slot is reclaimable.
      if (!active.stage_in_pending) return false;
      abandon_staging();
      release_input_pins(active);
      release_slot(active);
      close_phase_spans(active);
      close_task_span(active, "canceled");
      set_state(active, TaskState::canceled);
      return true;
    }
    default: return false;
  }
}

}  // namespace ripple::core
