#include "ripple/core/states.hpp"

namespace ripple::core {

const char* to_string(TaskState state) noexcept {
  switch (state) {
    case TaskState::created: return "CREATED";
    case TaskState::waiting: return "WAITING";
    case TaskState::staging_input: return "STAGING_INPUT";
    case TaskState::scheduling: return "SCHEDULING";
    case TaskState::scheduled: return "SCHEDULED";
    case TaskState::launching: return "LAUNCHING";
    case TaskState::running: return "RUNNING";
    case TaskState::staging_output: return "STAGING_OUTPUT";
    case TaskState::done: return "DONE";
    case TaskState::failed: return "FAILED";
    case TaskState::canceled: return "CANCELED";
  }
  return "?";
}

const char* to_string(ServiceState state) noexcept {
  switch (state) {
    case ServiceState::created: return "CREATED";
    case ServiceState::scheduling: return "SCHEDULING";
    case ServiceState::scheduled: return "SCHEDULED";
    case ServiceState::launching: return "LAUNCHING";
    case ServiceState::initializing: return "INITIALIZING";
    case ServiceState::publishing: return "PUBLISHING";
    case ServiceState::running: return "RUNNING";
    case ServiceState::draining: return "DRAINING";
    case ServiceState::stopped: return "STOPPED";
    case ServiceState::failed: return "FAILED";
    case ServiceState::canceled: return "CANCELED";
  }
  return "?";
}

const char* to_string(PilotState state) noexcept {
  switch (state) {
    case PilotState::created: return "CREATED";
    case PilotState::active: return "ACTIVE";
    case PilotState::done: return "DONE";
    case PilotState::failed: return "FAILED";
    case PilotState::canceled: return "CANCELED";
  }
  return "?";
}

bool is_terminal(TaskState state) noexcept {
  return state == TaskState::done || state == TaskState::failed ||
         state == TaskState::canceled;
}

bool is_terminal(ServiceState state) noexcept {
  return state == ServiceState::stopped || state == ServiceState::failed ||
         state == ServiceState::canceled;
}

bool is_terminal(PilotState state) noexcept {
  return state == PilotState::done || state == PilotState::failed ||
         state == PilotState::canceled;
}

bool transition_allowed(TaskState from, TaskState to) noexcept {
  // Re-placement path: a task interrupted by a node crash or pilot
  // preemption re-enters the scheduling queue when the restart policy
  // allows it (enforced by TaskManager). Inputs stay staged; outputs
  // of the lost attempt are discarded.
  if (to == TaskState::scheduling &&
      (from == TaskState::scheduling || from == TaskState::scheduled ||
       from == TaskState::launching || from == TaskState::running)) {
    return true;
  }
  if (is_terminal(from)) return false;
  if (to == TaskState::failed || to == TaskState::canceled) return true;
  switch (from) {
    case TaskState::created:
      return to == TaskState::waiting || to == TaskState::staging_input ||
             to == TaskState::scheduling;
    case TaskState::waiting:
      return to == TaskState::staging_input || to == TaskState::scheduling;
    case TaskState::staging_input: return to == TaskState::scheduling;
    case TaskState::scheduling: return to == TaskState::scheduled;
    case TaskState::scheduled: return to == TaskState::launching;
    case TaskState::launching: return to == TaskState::running;
    case TaskState::running:
      return to == TaskState::staging_output || to == TaskState::done;
    case TaskState::staging_output: return to == TaskState::done;
    default: return false;
  }
}

bool transition_allowed(ServiceState from, ServiceState to) noexcept {
  // Restart path: a failed service may re-enter the bootstrap pipeline
  // when its description allows restarts (enforced by ServiceManager).
  if (from == ServiceState::failed && to == ServiceState::scheduling) {
    return true;
  }
  if (is_terminal(from)) return false;
  if (to == ServiceState::failed || to == ServiceState::canceled) return true;
  switch (from) {
    case ServiceState::created:
      // Remote persistent services enter running directly.
      return to == ServiceState::scheduling || to == ServiceState::running;
    case ServiceState::scheduling: return to == ServiceState::scheduled;
    case ServiceState::scheduled: return to == ServiceState::launching;
    case ServiceState::launching: return to == ServiceState::initializing;
    case ServiceState::initializing: return to == ServiceState::publishing;
    case ServiceState::publishing: return to == ServiceState::running;
    case ServiceState::running:
      return to == ServiceState::draining || to == ServiceState::stopped;
    case ServiceState::draining: return to == ServiceState::stopped;
    default: return false;
  }
}

bool transition_allowed(PilotState from, PilotState to) noexcept {
  if (is_terminal(from)) return false;
  if (to == PilotState::failed || to == PilotState::canceled) return true;
  switch (from) {
    case PilotState::created: return to == PilotState::active;
    case PilotState::active: return to == PilotState::done;
    default: return false;
  }
}

}  // namespace ripple::core
