#pragma once

/// \file scheduler_request.hpp
/// The slot-request type shared by the scheduler and its wait queue.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "ripple/platform/node.hpp"

namespace ripple::core {

enum class SchedulerPolicy { fifo, backfill };

/// A slot request from either manager.
struct ScheduleRequest {
  std::string uid;  ///< task/service uid (used for cancel)
  std::size_t cores = 1;
  std::size_t gpus = 0;
  double mem_gb = 0.0;
  int priority = 0;

  /// Tenant (concurrent session/workflow) the request belongs to.
  /// Empty — the single-tenant default — opts out of fair-share
  /// arbitration and per-tenant accounting entirely.
  std::string tenant;

  /// Input-dataset footprint (locality-aware placement): the datasets
  /// the request reads and the bytes that must still move into the
  /// target pilot's zone at submission time. The data plane's
  /// PlacementAdvisor ranks candidate pilots by this before the request
  /// is bound to one, and a data-aware backfill pass (see
  /// Scheduler::set_locality_oracle) prefers requests whose
  /// `input_datasets` are already resident — the oracle re-resolves
  /// residency live, so `input_bytes` stays the submission-time
  /// snapshot used for telemetry.
  std::vector<std::string> input_datasets;
  double input_bytes = 0.0;

  /// Fired (asynchronously) with the placement when granted.
  std::function<void(platform::Slot, platform::Node*)> granted;
};

}  // namespace ripple::core
