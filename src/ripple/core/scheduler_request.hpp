#pragma once

/// \file scheduler_request.hpp
/// The slot-request type shared by the scheduler and its wait queue.

#include <cstddef>
#include <functional>
#include <string>

#include "ripple/platform/node.hpp"

namespace ripple::core {

enum class SchedulerPolicy { fifo, backfill };

/// A slot request from either manager.
struct ScheduleRequest {
  std::string uid;  ///< task/service uid (used for cancel)
  std::size_t cores = 1;
  std::size_t gpus = 0;
  double mem_gb = 0.0;
  int priority = 0;

  /// Fired (asynchronously) with the placement when granted.
  std::function<void(platform::Slot, platform::Node*)> granted;
};

}  // namespace ripple::core
