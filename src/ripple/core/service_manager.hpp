#pragma once

/// \file service_manager.hpp
/// The ServiceManager: the paper's central architectural addition.
///
/// Manages service tasks through their full lifecycle — scheduling,
/// launch, program initialization (model load), endpoint publication,
/// readiness, liveness (heartbeats), draining and termination — while
/// services remain schedulable units next to regular tasks. Also hosts
/// the per-cluster service registry endpoint the services publish to
/// (the `publish` component of Fig. 3's bootstrap decomposition).
///
/// Deployment modes:
///  * local    — bootstrapped inside a pilot (submit()), BT recorded;
///  * remote   — persistent services on another platform
///               (register_remote()), no bootstrap, RUNNING immediately
///               after program init (paper: "remote models are usually
///               persistent ... and do not need to be bootstrapped").
///
/// Endpoint registry events: every transition into and out of RUNNING is
/// published on the pub/sub topic "endpoints" as {name, uid, endpoint,
/// up}. Load-balancing clients and the ml::Autoscaler subscribe to it to
/// reroute traffic as replicas come and go — the paper's planned
/// "dynamically rerouting requests to less used service instances".

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ripple/core/descriptions.hpp"
#include "ripple/core/entities.hpp"
#include "ripple/core/executor.hpp"
#include "ripple/core/runtime.hpp"
#include "ripple/core/scheduler.hpp"

namespace ripple::core {

class ServiceManager {
 public:
  ServiceManager(Runtime& runtime, Scheduler& scheduler, Executor& executor);

  /// Submits a local service into `pilot`; returns its uid.
  std::string submit(Pilot& pilot, ServiceDescription desc);

  /// Submits a batch of local services; returns uids in order. The
  /// whole batch enters the scheduler through one submit_all pass:
  /// priorities are enacted across the batch and the pilot's queue is
  /// scanned once instead of N times.
  std::vector<std::string> submit_all(Pilot& pilot,
                                      std::vector<ServiceDescription> descs);

  /// Registers a persistent remote service on `cluster` (placed on node
  /// `node_index`); returns its uid. The service enters RUNNING as soon
  /// as its program initializes (set config {"preloaded": true} for
  /// instant readiness).
  std::string register_remote(platform::Cluster& cluster,
                              ServiceDescription desc,
                              std::size_t node_index = 0);

  [[nodiscard]] const Service& get(const std::string& uid) const;
  [[nodiscard]] Service& get_mutable(const std::string& uid);
  [[nodiscard]] bool exists(const std::string& uid) const;
  [[nodiscard]] std::vector<std::string> uids() const;

  /// RPC endpoints of RUNNING services, optionally filtered by
  /// description name.
  [[nodiscard]] std::vector<std::string> endpoints(
      const std::string& name_filter = "") const;

  /// Uids of RUNNING services, optionally filtered by name.
  [[nodiscard]] std::vector<std::string> running(
      const std::string& name_filter = "") const;

  [[nodiscard]] std::size_t count_in_state(ServiceState state) const;

  /// Services (optionally name-filtered) that are not yet terminal —
  /// the replica count an autoscaler must reason about, since
  /// bootstrapping replicas are capacity already committed.
  [[nodiscard]] std::size_t count_active(
      const std::string& name_filter = "") const;

  /// Sum of outstanding (queued + executing) requests across RUNNING
  /// services, optionally name-filtered. The autoscaler's queue-depth
  /// signal.
  [[nodiscard]] std::size_t total_outstanding(
      const std::string& name_filter = "") const;

  /// Outstanding (queued + executing) requests of one service; 0 once
  /// its program is gone. Drives least-loaded scale-down victims.
  [[nodiscard]] std::size_t outstanding_of(const std::string& uid) const;

  /// Exact windowed q-quantile of request latency pooled across RUNNING
  /// services (name-filtered): merges every matching program's live
  /// window samples (ServiceProgram::collect_window_latencies) and
  /// interpolates over the merged set, so the group p95 weights busy
  /// replicas by their traffic instead of averaging per-replica
  /// quantiles. Negative when no service reported a sample — the SLO
  /// autoscaler reads that as full headroom.
  [[nodiscard]] double window_latency_quantile(
      const std::string& name_filter, double q) const;

  /// Fires cb(true) once all `uids` are RUNNING, cb(false) as soon as
  /// any of them reaches a terminal state first.
  void when_ready(std::vector<std::string> uids,
                  std::function<void(bool ok)> on_ready);

  /// Graceful stop: drains outstanding requests, then unbinds and
  /// releases resources. `on_stopped` may be null.
  void stop(const std::string& uid, std::function<void()> on_stopped = {});

  /// Stops every non-terminal service; `on_all_stopped` may be null.
  void stop_all(std::function<void()> on_all_stopped = {});

  /// Fault injection: hard-crash a running service (endpoint vanishes,
  /// heartbeats cease). Liveness monitoring, if enabled, will detect it.
  void kill(const std::string& uid);

  /// The live program object of a service (nullptr once stopped/failed).
  [[nodiscard]] ServiceProgram* program(const std::string& uid);

  /// Per-service stats: state, endpoint, bootstrap timing, program stats.
  [[nodiscard]] json::Value stats(const std::string& uid) const;

 private:
  struct Active {
    std::unique_ptr<Service> service;
    Pilot* pilot = nullptr;  ///< null for remote services
    platform::Cluster* cluster = nullptr;
    std::unique_ptr<ExecutionContext> ctx;
    std::unique_ptr<ServiceProgram> program;
    std::unique_ptr<msg::RpcServer> server;
    std::unique_ptr<msg::RpcClient> pub_client;
    std::unique_ptr<msg::RpcClient> hb_client;
    sim::EventLoop::TimerHandle ready_timer;
    sim::EventLoop::TimerHandle hb_send_timer;
    sim::EventLoop::TimerHandle hb_deadline_timer;
    sim::HostId host;
    std::size_t cohort_at_launch = 0;
    bool slot_held = false;
    bool crashed = false;
  };

  struct ReadyWatcher {
    std::vector<std::string> uids;
    std::function<void(bool)> on_ready;
  };

  /// Validates a description and registers the service (ready timer
  /// armed); the caller decides when scheduling starts.
  std::string create_service(Pilot& pilot, ServiceDescription desc);
  [[nodiscard]] ScheduleRequest make_request(const std::string& uid,
                                             Active& active);

  // Bootstrap pipeline.
  void begin_scheduling(const std::string& uid);
  void begin_scheduling_batch(Pilot& pilot,
                              const std::vector<std::string>& uids);
  void on_granted(const std::string& uid, platform::Slot slot,
                  platform::Node* node);
  void on_launched(const std::string& uid);
  void on_initialized(const std::string& uid);
  void do_publish(const std::string& uid);
  void on_published(const std::string& uid);

  void fail_service(const std::string& uid, const std::string& error);
  void release_resources(Active& active);
  void set_state(Active& active, ServiceState state);
  void recheck_watchers();

  /// Publishes an endpoint up/down event on the "endpoints" topic.
  void publish_endpoint_event(const Active& active, bool up);

  // Liveness.
  void start_monitoring(const std::string& uid);
  void schedule_heartbeat(const std::string& uid);
  void arm_liveness_deadline(const std::string& uid);
  void on_liveness_timeout(const std::string& uid);

  void finalize_stop(const std::string& uid,
                     std::function<void()> on_stopped);

  /// Creates (once per cluster) the registry RPC endpoint on the
  /// cluster's head node.
  const std::string& ensure_registry(platform::Cluster& cluster);

  [[nodiscard]] Active& active_for(const std::string& uid);
  [[nodiscard]] const Active& active_for(const std::string& uid) const;
  [[nodiscard]] std::size_t count_bootstrapping(
      const std::string& pilot_uid) const;
  [[nodiscard]] json::Value contention_config(const Active& active) const;

  Runtime& runtime_;
  Scheduler& scheduler_;
  Executor& executor_;
  common::Rng rng_;
  common::Logger log_;
  std::map<std::string, Active> services_;
  std::map<std::string, std::unique_ptr<msg::RpcServer>> registries_;
  std::vector<ReadyWatcher> watchers_;
};

}  // namespace ripple::core
