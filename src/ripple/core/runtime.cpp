#include "ripple/core/runtime.hpp"

namespace ripple::core {

Runtime::Runtime(std::uint64_t seed)
    : seed_(seed),
      rng_(seed),
      network_(loop_, rng_.fork("network")),
      router_(loop_, network_),
      pubsub_(loop_),
      timeline_(pubsub_) {}

common::Logger Runtime::make_logger(const std::string& name) {
  return common::Logger(name, [this] { return loop_.now(); });
}

void Runtime::publish_state(const std::string& kind, const std::string& uid,
                            const std::string& state) {
  json::Value event = json::Value::object();
  event.set("kind", kind);
  event.set("uid", uid);
  event.set("state", state);
  event.set("time", loop_.now());
  pubsub_.publish("state", std::move(event));
}

void Runtime::register_endpoint(const std::string& name,
                                const std::string& endpoint) {
  endpoint_directory_[name].insert(endpoint);
}

void Runtime::deregister_endpoint(const std::string& name,
                                  const std::string& endpoint) {
  const auto it = endpoint_directory_.find(name);
  if (it == endpoint_directory_.end()) return;
  it->second.erase(endpoint);
  if (it->second.empty()) endpoint_directory_.erase(it);
}

std::vector<std::string> Runtime::endpoints_of(
    const std::string& name) const {
  const auto it = endpoint_directory_.find(name);
  if (it == endpoint_directory_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

}  // namespace ripple::core
