#include "ripple/core/runtime.hpp"

namespace ripple::core {

Runtime::Runtime(std::uint64_t seed)
    : seed_(seed),
      rng_(seed),
      network_(loop_, rng_.fork("network")),
      router_(loop_, network_),
      pubsub_(loop_),
      timeline_(pubsub_) {}

common::Logger Runtime::make_logger(const std::string& name) {
  return common::Logger(name, [this] { return loop_.now(); });
}

void Runtime::publish_state(const std::string& kind, const std::string& uid,
                            const std::string& state) {
  json::Value event = json::Value::object();
  event.set("kind", kind);
  event.set("uid", uid);
  event.set("state", state);
  event.set("time", loop_.now());
  pubsub_.publish("state", std::move(event));
}

}  // namespace ripple::core
