#pragma once

/// \file data_manager.hpp
/// Dataset registry and staging facade over the data plane.
///
/// The paper collects "existing data capabilities into a DataManager".
/// Since the data-plane rework this class is a thin compatibility
/// facade over two subsystems it owns: the data::ReplicaCatalog
/// (datasets, finite per-zone stores, pinning/lineage, LRU eviction)
/// and the data::TransferEngine (fair-share shared-link transfer
/// scheduling with concurrency caps and retries). Existing call sites —
/// stage(), stage_all(), put() — keep working unchanged; new code can
/// reach the full surface through catalog() and engine().
///
/// Staging a task means ensuring its input datasets are present in the
/// pilot's zone. Concurrent stages of one (dataset, zone) pair share a
/// single transfer; stage_all() cancels its surviving siblings when one
/// dataset fails, so no batch leaves untracked transfers behind. A
/// dataset replicated in several zones stages as one multi-source
/// striped transfer (every replica's link contributes its fair share);
/// prefetch() additionally pushes datasets toward a likely consumer
/// zone on idle links ahead of demand, without ever evicting and within
/// a per-store in-flight budget.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ripple/common/hash.hpp"
#include "ripple/common/statistics.hpp"
#include "ripple/core/runtime.hpp"
#include "ripple/data/catalog.hpp"
#include "ripple/data/transfer_engine.hpp"

namespace ripple::core {

using data::Dataset;

class DataManager {
 public:
  explicit DataManager(Runtime& runtime);

  /// Registers a dataset resident in `zone`. Re-registering adds a
  /// replica location. A non-empty `content_id` names the dataset's
  /// content: names sharing a content id alias one canonical dataset in
  /// the catalog, so tenants publishing the same bytes under their own
  /// names share replicas (and warm-cache hits) instead of copies.
  void register_dataset(const std::string& name, double bytes,
                        const std::string& zone,
                        const std::string& content_id = "");

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] const Dataset& dataset(const std::string& name) const;
  [[nodiscard]] bool available_in(const std::string& name,
                                  const std::string& zone) const;

  /// Declares a finite store for `zone` (bytes); see ReplicaCatalog.
  void add_store(const std::string& zone, double capacity_bytes);

  /// Transfer-service handshake latency (default ~1.5 s, Globus-like).
  void set_setup_latency(common::Distribution dist);

  /// Explicit bulk-bandwidth override between two zones (bytes/s,
  /// symmetric). Zone pairs without an override use the sim::Network
  /// link model's bandwidth; pairs the network does not model fall back
  /// to `default_bandwidth`.
  void set_bandwidth(const std::string& zone_a, const std::string& zone_b,
                     double bytes_per_s);
  void set_default_bandwidth(double bytes_per_s);

  /// Bytes of `names` without a replica in `zone` (the footprint a
  /// ScheduleRequest carries for locality-aware placement).
  [[nodiscard]] double bytes_required(const std::vector<std::string>& names,
                                      const std::string& zone) const;

  using TransferCallback = std::function<void(bool ok, sim::Duration)>;

  /// Ensures `name` is replicated into `dst_zone`; instantaneous when a
  /// replica already exists there. Concurrent transfers of the same
  /// dataset to the same zone share one copy (callers all complete when
  /// the first transfer lands).
  /// `tenant` attributes the staging work for multi-tenant accounting:
  /// the store reservation counts against the tenant's quota, the
  /// transfer rides the tenant's weighted link share, and the committed
  /// replica is charged to the tenant. Empty (the default) opts out.
  void stage(const std::string& name, const std::string& dst_zone,
             TransferCallback on_done, const std::string& tenant = "");

  /// Handle for cancelling one stage() waiter; 0 when the request
  /// completed (or failed) without an in-flight transfer.
  using StageTicket = std::uint64_t;

  /// stage() returning a cancellable ticket. Cancelling the last waiter
  /// of a shared transfer aborts the transfer itself.
  StageTicket stage_tracked(const std::string& name,
                            const std::string& dst_zone,
                            TransferCallback on_done,
                            const std::string& tenant = "");

  /// Cancels a pending staged waiter; its callback never fires. Returns
  /// false when the ticket already completed.
  bool cancel_stage(StageTicket ticket);

  using BatchCallback =
      std::function<void(bool ok, const std::string& failed_dataset)>;

  /// Stages every dataset in `names` into `dst_zone` and fires `on_done`
  /// exactly once: (false, name) as soon as any transfer fails — at
  /// which point the batch's remaining in-flight stages are cancelled
  /// (transfers shared with other callers keep running for them) — or
  /// (true, "") when all have landed. An empty batch completes
  /// asynchronously on the next event-loop turn.
  void stage_all(const std::vector<std::string>& names,
                 const std::string& dst_zone, BatchCallback on_done,
                 const std::string& tenant = "");

  /// Opaque handle to a stage_all batch; null when the batch completed
  /// inline (empty name list).
  using BatchHandle = std::shared_ptr<void>;

  /// stage_all() returning a handle for cancel_batch().
  BatchHandle stage_all_tracked(const std::vector<std::string>& names,
                                const std::string& dst_zone,
                                BatchCallback on_done,
                                const std::string& tenant = "");

  /// Pair form: per-target destination zones — the stage-out fan-out,
  /// where each produced dataset may go somewhere else. Same batch
  /// semantics (first failure cancels the surviving siblings).
  BatchHandle stage_all_tracked(
      const std::vector<std::pair<std::string, std::string>>& targets,
      BatchCallback on_done, const std::string& tenant = "");

  /// Abandons a batch: its remaining in-flight stages are cancelled
  /// (transfers shared with other callers keep running for them) and
  /// the batch callback never fires. No-op for null or already
  /// completed/failed handles. Callers cancelling a task mid-stage-in
  /// use this so abandoned transfers stop burning link bandwidth.
  void cancel_batch(const BatchHandle& handle);

  /// Records a task-produced dataset (stage-out target). A non-empty
  /// `content_id` deduplicates against identical content published
  /// under other names (see register_dataset).
  void put(const std::string& name, double bytes, const std::string& zone,
           const std::string& content_id = "");

  // --- failure handling -----------------------------------------------------

  /// The zone's store crashed. Flights *into* it are cancelled (their
  /// waiters fail on the next loop turn), the catalog force-drops every
  /// replica it held (fail_store), and each lost dataset that still has
  /// a surviving replica elsewhere is re-replicated ("repaired") into
  /// the declared store with the most free bytes that does not already
  /// hold it — a striped re-stripe from the survivors over the existing
  /// stage() path. Datasets with no survivor are logged as lost.
  /// Flights *from* the zone keep running (their bytes are modeled as
  /// already in flight; the catalog tolerates their late unpins).
  /// Returns the number of repairs started.
  std::size_t handle_store_failure(const std::string& zone);

  /// Ordered "t event" lines for every store-failure repair decision —
  /// the repair determinism oracle, FNV-fingerprinted.
  [[nodiscard]] const std::vector<std::string>& repair_log() const noexcept {
    return repair_log_;
  }
  [[nodiscard]] std::uint64_t repair_log_hash() const noexcept {
    return repair_hash_;
  }
  [[nodiscard]] std::uint64_t repairs_started() const noexcept {
    return repairs_started_;
  }
  [[nodiscard]] std::uint64_t repairs_completed() const noexcept {
    return repairs_completed_;
  }

  // --- replication-ahead ----------------------------------------------------

  /// Opportunistically replicates `names` toward `zone` ahead of
  /// demand (stage lookahead). A prefetch is strictly best-effort: it
  /// only uses sources whose link to `zone` is currently idle, never
  /// evicts (the store must have genuinely free bytes), and the bytes
  /// in flight per store are bounded by the prefetch budget — datasets
  /// that fail any bound are skipped silently. A later stage() of the
  /// same (dataset, zone) pair piggybacks on the in-flight prefetch,
  /// and a demand reservation that does not fit reclaims waiterless
  /// prefetch flights (speculation never starves real work). Returns
  /// the number of prefetch transfers started.
  std::size_t prefetch(const std::vector<std::string>& names,
                       const std::string& zone,
                       const std::string& tenant = "");

  /// Abandons the in-flight *prefetch* of (`name`, `zone`): cancels the
  /// transfer, unpins its sources and returns the store reservation.
  /// Strictly a no-op (returning false) when there is no such flight,
  /// when the flight is a demand stage, or when a demand stage has
  /// piggybacked on the prefetch — a waiter turns speculation into real
  /// work, which must not be torn down under it. Callers: workflow
  /// prune, which revokes frontier prefetches whose consumers were
  /// pruned away before the data landed.
  bool abandon_prefetch(const std::string& name, const std::string& zone);

  /// Per-store cap on in-flight prefetched bytes (default 32 GB).
  void set_prefetch_budget(double bytes);

  [[nodiscard]] std::uint64_t prefetches_started() const noexcept {
    return prefetches_started_;
  }
  [[nodiscard]] std::uint64_t prefetches_completed() const noexcept {
    return prefetches_completed_;
  }

  [[nodiscard]] std::uint64_t transfers() const noexcept {
    return engine_.transfers_started();
  }
  [[nodiscard]] double bytes_moved() const noexcept {
    return engine_.bytes_moved();
  }
  [[nodiscard]] std::uint64_t cancelled_transfers() const noexcept {
    return engine_.transfers_cancelled();
  }
  [[nodiscard]] const common::Summary& transfer_times() const noexcept {
    return engine_.transfer_times();
  }

  [[nodiscard]] data::ReplicaCatalog& catalog() noexcept { return catalog_; }
  [[nodiscard]] const data::ReplicaCatalog& catalog() const noexcept {
    return catalog_;
  }
  [[nodiscard]] data::TransferEngine& engine() noexcept { return engine_; }
  [[nodiscard]] const data::TransferEngine& engine() const noexcept {
    return engine_;
  }

 private:
  struct StageBatch;

  struct Flight {
    data::TransferEngine::TransferId transfer_id = 0;
    /// Source replicas feeding the (possibly striped) transfer, each
    /// pinned for the flight's duration.
    std::vector<std::string> src_zones;
    double reserved_bytes = 0.0;
    bool prefetch = false;  ///< counts against the prefetch budget
    /// Tenant whose quota/weights the flight rides; pins, reservation
    /// and the committed replica are all charged to (and released with)
    /// this value. Empty for untenanted flights.
    std::string tenant;
    std::vector<std::pair<StageTicket, TransferCallback>> waiters;
  };

  using FlightKey = std::pair<std::string, std::string>;

  /// Launches the transfer of `name` into `dst_zone` (striped across
  /// every replica when there are several) and registers the flight.
  /// `sources` must be non-empty and reserve() must have succeeded.
  Flight& launch_flight(const FlightKey& key,
                        std::vector<std::string> sources, double bytes,
                        bool prefetch, const std::string& tenant);

  /// Cancels one waiterless prefetch flight into `zone`, returning its
  /// reservation to the store (demand staging outranks speculation).
  /// False when none is left to reclaim.
  bool reclaim_one_prefetch(const std::string& zone);

  void on_flight_done(const FlightKey& key, bool ok, sim::Duration elapsed);

  /// Healthiest declared store for a repair replica of `name`: most
  /// free bytes among stores not already holding it, first-sorted zone
  /// on ties; empty when nothing fits.
  [[nodiscard]] std::string repair_target(const std::string& name) const;

  void record_repair(const std::string& event);

  Runtime& runtime_;
  data::ReplicaCatalog catalog_;
  data::TransferEngine engine_;
  std::map<FlightKey, Flight> flights_;
  std::map<StageTicket, FlightKey> ticket_index_;
  std::map<std::string, double> prefetch_inflight_;  ///< zone -> bytes
  double prefetch_budget_ = 32e9;
  std::uint64_t prefetches_started_ = 0;
  std::uint64_t prefetches_completed_ = 0;
  StageTicket next_ticket_ = 1;
  std::vector<std::string> repair_log_;
  std::uint64_t repair_hash_ = common::kFnvOffsetBasis;
  std::uint64_t repairs_started_ = 0;
  std::uint64_t repairs_completed_ = 0;
};

}  // namespace ripple::core
