#pragma once

/// \file data_manager.hpp
/// Dataset registry and bulk-transfer model (Globus role).
///
/// The paper collects "existing data capabilities into a DataManager".
/// Datasets are named byte blobs resident in one or more zones; staging
/// a task means ensuring its input datasets are present in the pilot's
/// zone. Transfers cost a setup latency (transfer-service handshake)
/// plus bytes / bandwidth of the zone pair.

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ripple/common/statistics.hpp"
#include "ripple/core/runtime.hpp"

namespace ripple::core {

struct Dataset {
  std::string name;
  double bytes = 0.0;
  std::set<std::string> zones;  ///< where replicas currently live
};

class DataManager {
 public:
  explicit DataManager(Runtime& runtime);

  /// Registers a dataset resident in `zone`. Re-registering adds a
  /// replica location.
  void register_dataset(const std::string& name, double bytes,
                        const std::string& zone);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] const Dataset& dataset(const std::string& name) const;
  [[nodiscard]] bool available_in(const std::string& name,
                                  const std::string& zone) const;

  /// Transfer-service handshake latency (default ~1.5 s, Globus-like).
  void set_setup_latency(common::Distribution dist) { setup_ = dist; }

  /// Bulk bandwidth between two zones (bytes/s, symmetric). Falls back
  /// to `default_bandwidth` when a pair is not configured.
  void set_bandwidth(const std::string& zone_a, const std::string& zone_b,
                     double bytes_per_s);
  void set_default_bandwidth(double bytes_per_s);

  using TransferCallback = std::function<void(bool ok, sim::Duration)>;

  /// Ensures `name` is replicated into `dst_zone`; instantaneous when a
  /// replica already exists there. Concurrent transfers of the same
  /// dataset to the same zone share one copy (callers all complete when
  /// the first transfer lands).
  void stage(const std::string& name, const std::string& dst_zone,
             TransferCallback on_done);

  using BatchCallback =
      std::function<void(bool ok, const std::string& failed_dataset)>;

  /// Stages every dataset in `names` into `dst_zone` and fires `on_done`
  /// exactly once: (false, name) as soon as any transfer fails, or
  /// (true, "") when all have landed. An empty batch completes
  /// asynchronously on the next event-loop turn.
  void stage_all(const std::vector<std::string>& names,
                 const std::string& dst_zone, BatchCallback on_done);

  /// Records a task-produced dataset (stage-out target).
  void put(const std::string& name, double bytes, const std::string& zone);

  [[nodiscard]] std::uint64_t transfers() const noexcept { return transfers_; }
  [[nodiscard]] double bytes_moved() const noexcept { return bytes_moved_; }
  [[nodiscard]] const common::Summary& transfer_times() const noexcept {
    return transfer_times_;
  }

 private:
  [[nodiscard]] double bandwidth_between(const std::string& zone_a,
                                         const std::string& zone_b) const;

  Runtime& runtime_;
  common::Rng rng_;
  std::map<std::string, Dataset> datasets_;
  std::map<std::pair<std::string, std::string>, double> bandwidth_;
  double default_bandwidth_ = 1.25e9;  ///< 10 Gb/s
  common::Distribution setup_ =
      common::Distribution::lognormal(1.5, 0.3, 0.05);
  std::uint64_t transfers_ = 0;
  double bytes_moved_ = 0.0;
  common::Summary transfer_times_;
  // (dataset, zone) -> callbacks waiting on an in-flight transfer
  std::map<std::pair<std::string, std::string>,
           std::vector<TransferCallback>>
      in_flight_;
};

}  // namespace ripple::core
