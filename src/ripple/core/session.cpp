#include "ripple/core/session.hpp"

#include "ripple/common/error.hpp"
#include "ripple/common/ids.hpp"
#include "ripple/common/strutil.hpp"
#include "ripple/core/failure_coordinator.hpp"

namespace ripple::core {

Session::Session(SessionConfig config)
    : config_(config),
      runtime_(config.seed),
      scheduler_(std::make_unique<Scheduler>(runtime_,
                                             config.scheduler_policy)),
      executor_(std::make_unique<Executor>(runtime_)),
      data_(std::make_unique<DataManager>(runtime_)),
      services_(std::make_unique<ServiceManager>(runtime_, *scheduler_,
                                                 *executor_)),
      tasks_(std::make_unique<TaskManager>(runtime_, *scheduler_, *executor_,
                                           *data_, *services_)),
      log_(runtime_.make_logger("session")) {
  // Data-aware backfill: the scheduler asks the data plane, live, how
  // many input bytes a queued request would still have to move. The
  // hook keeps core/ decoupled from data/ (the scheduler only sees a
  // std::function).
  scheduler_->set_locality_oracle(
      [this](const std::vector<std::string>& datasets,
             const std::string& zone) {
        return data_->bytes_required(datasets, zone);
      });
  failures_ = std::make_unique<FailureCoordinator>(*this);
  if (config.tracing) enable_tracing(config.gauge_tick);
}

void Session::enable_tracing(double gauge_tick) {
  runtime_.tracer().set_enabled(true);
  auto& counters = runtime_.counters();
  if (counters.enabled()) return;  // gauges already registered
  counters.set_enabled(true);
  counters.register_gauge("loop.pending", [this] {
    return static_cast<double>(runtime_.loop().pending());
  });
  counters.register_gauge("loop.peak_pending", [this] {
    return static_cast<double>(runtime_.loop().peak_pending());
  });
  counters.register_gauge("loop.events", [this] {
    return static_cast<double>(runtime_.loop().events_processed());
  });
  counters.register_gauge("sched.waiting", [this] {
    return static_cast<double>(scheduler_->waiting_total());
  });
  counters.register_gauge("data.live_transfers", [this] {
    return static_cast<double>(data_->engine().live());
  });
  counters.register_gauge("data.bytes_moved", [this] {
    return data_->engine().bytes_moved();
  });
  counters.register_gauge("store.used_bytes", [this] {
    double used = 0.0;
    for (const std::string& zone : data_->catalog().store_zones()) {
      used += data_->catalog().store(zone).used;
    }
    return used;
  });
  counters.arm_sampling(runtime_.loop(), gauge_tick);
}

Session::~Session() = default;

platform::Cluster& Session::add_platform(
    const platform::PlatformProfile& profile) {
  ensure(clusters_.count(profile.name) == 0, Errc::invalid_state,
         strutil::cat("platform '", profile.name, "' already added"));
  auto cluster = std::make_unique<platform::Cluster>(
      runtime_.loop(), runtime_.network(), profile,
      runtime_.rng().fork("cluster." + profile.name));
  auto& ref = *cluster;
  clusters_.emplace(profile.name, std::move(cluster));

  // Wire WAN links among all platforms added so far.
  std::vector<platform::Cluster*> all;
  all.reserve(clusters_.size());
  for (auto& [name, c] : clusters_) all.push_back(c.get());
  platform::connect_clusters(runtime_.network(), all);
  return ref;
}

platform::Cluster& Session::cluster(const std::string& name) {
  const auto it = clusters_.find(name);
  ensure(it != clusters_.end(), Errc::not_found,
         strutil::cat("unknown platform '", name, "'"));
  return *it->second;
}

bool Session::has_cluster(const std::string& name) const {
  return clusters_.count(name) != 0;
}

std::vector<std::string> Session::cluster_names() const {
  std::vector<std::string> names;
  names.reserve(clusters_.size());
  for (const auto& [name, cluster] : clusters_) names.push_back(name);
  return names;
}

void Session::set_tenant_weight(const std::string& tenant, double weight) {
  scheduler_->set_tenant_weight(tenant, weight);
  data_->engine().set_tenant_weight(tenant, weight);
}

void Session::set_tenant_store_quota(const std::string& zone,
                                     const std::string& tenant,
                                     double bytes) {
  data_->catalog().set_tenant_quota(zone, tenant, bytes);
}

void Session::set_tenant_link_quota(const std::string& tenant, double bytes) {
  data_->engine().set_tenant_link_quota(tenant, bytes);
}

Pilot& Session::submit_pilot(const PilotDescription& desc) {
  desc.validate();
  platform::Cluster& target = cluster(desc.platform);
  const std::string uid = runtime_.make_uid("pilot");
  auto pilot = std::make_unique<Pilot>(uid, desc, &target);
  pilot->nodes() = target.reserve_nodes(desc.nodes);
  Pilot& ref = *pilot;
  pilots_.emplace(uid, std::move(pilot));
  runtime_.publish_state("pilot", uid, to_string(PilotState::created));

  scheduler_->add_pilot(ref);
  // The pilot agent becomes active asynchronously (queue wait and agent
  // boot are not measured by the paper's experiments; submissions are
  // accepted immediately and scheduled once slots exist).
  runtime_.loop().post([this, uid] {
    const auto it = pilots_.find(uid);
    if (it == pilots_.end()) return;
    it->second->set_state(PilotState::active, runtime_.loop().now());
    runtime_.publish_state("pilot", uid, to_string(PilotState::active));
  });
  return ref;
}

Pilot& Session::pilot(const std::string& uid) {
  const auto it = pilots_.find(uid);
  ensure(it != pilots_.end(), Errc::not_found,
         strutil::cat("unknown pilot '", uid, "'"));
  return *it->second;
}

std::vector<std::string> Session::pilot_uids() const {
  std::vector<std::string> out;
  out.reserve(pilots_.size());
  for (const auto& [uid, pilot] : pilots_) out.push_back(uid);
  return out;
}

void Session::close_pilot(const std::string& uid) {
  Pilot& p = pilot(uid);
  ensure(!is_terminal(p.state()), Errc::invalid_state,
         strutil::cat("pilot ", uid, " already terminal"));
  scheduler_->remove_pilot(uid);
  p.cluster().release_nodes(p.nodes());
  p.set_state(PilotState::done, runtime_.loop().now());
  runtime_.publish_state("pilot", uid, to_string(PilotState::done));
}

void Session::fail_pilot(const std::string& uid) {
  Pilot& p = pilot(uid);
  if (is_terminal(p.state())) return;  // lost a race with close/failure
  // Survivors, in deterministic map order: the candidates every
  // interrupted task may be re-bound to.
  std::vector<Pilot*> survivors;
  for (auto& [other_uid, other] : pilots_) {
    if (other_uid != uid && !is_terminal(other->state())) {
      survivors.push_back(other.get());
    }
  }
  scheduler_->remove_pilot(uid);
  p.cluster().release_nodes(p.nodes());
  p.set_state(PilotState::failed, runtime_.loop().now());
  runtime_.publish_state("pilot", uid, to_string(PilotState::failed));
  tasks_->handle_pilot_loss(uid, survivors);
}

std::size_t Session::run() { return runtime_.loop().run(); }

std::size_t Session::run_until(sim::SimTime deadline) {
  return runtime_.loop().run_until(deadline);
}

sim::SimTime Session::now() const noexcept {
  return const_cast<Runtime&>(runtime_).loop().now();
}

json::Value Session::summary() const {
  auto& self = const_cast<Session&>(*this);
  json::Value out = json::Value::object();
  out.set("seed", config_.seed);
  out.set("now", self.now());
  out.set("events", self.loop().events_processed());
  out.set("messages", self.runtime().network().messages_delivered());

  json::Value task_states = json::Value::object();
  for (const TaskState s :
       {TaskState::created, TaskState::waiting, TaskState::scheduling,
        TaskState::running, TaskState::done, TaskState::failed,
        TaskState::canceled}) {
    const std::size_t n = self.tasks().count_in_state(s);
    if (n > 0) task_states.set(to_string(s), n);
  }
  out.set("tasks", std::move(task_states));

  json::Value svc_states = json::Value::object();
  for (const ServiceState s :
       {ServiceState::created, ServiceState::scheduling,
        ServiceState::running, ServiceState::draining, ServiceState::stopped,
        ServiceState::failed, ServiceState::canceled}) {
    const std::size_t n = self.services().count_in_state(s);
    if (n > 0) svc_states.set(to_string(s), n);
  }
  out.set("services", std::move(svc_states));
  return out;
}

}  // namespace ripple::core
