#pragma once

/// \file failure_coordinator.hpp
/// Wires the seeded sim::FailureInjector into the running Session.
///
/// The injector only produces a deterministic event stream; this class
/// gives each event its runtime meaning:
///
///   node_crash     -> Cluster::fail_node (capacity index evicts the
///                     node) + TaskManager::handle_node_failure (placed
///                     attempts re-enter scheduling with backoff)
///   node_restore   -> Cluster::restore_node + Scheduler::reschedule of
///                     the owning pilot (the recovered capacity is
///                     offered to the queue immediately)
///   pilot_preempt  -> Session::fail_pilot (spot reclamation: scheduler
///                     entry removed, nodes released, every bound task
///                     re-bound to a surviving pilot or failed)
///   slow_node      -> Node::set_speed_factor(magnitude) — subsequent
///                     launches on the node run slower (stragglers);
///                     node_normal resets the factor
///   link_down      -> TransferEngine::fail_link (in-flight attempts
///                     die terminally; stripes fail over to surviving
///                     links); link_up restores and drains the queue
///   store_crash    -> DataManager::handle_store_failure (replicas
///                     re-striped from survivors); store_restore
///                     re-declares the store at its old capacity
///
/// Targets are plain strings: node ids, pilot uids, "zoneA|zoneB" link
/// pairs, store zone names. The arm_* helpers enumerate them from the
/// session in deterministic (sorted) order.

#include <map>
#include <string>
#include <vector>

#include "ripple/common/logging.hpp"
#include "ripple/sim/failure_injector.hpp"

namespace ripple::platform {
class Node;
}

namespace ripple::core {

class Session;

class FailureCoordinator {
 public:
  explicit FailureCoordinator(Session& session);

  FailureCoordinator(const FailureCoordinator&) = delete;
  FailureCoordinator& operator=(const FailureCoordinator&) = delete;

  /// The underlying injector, for arm()/inject_at()/event_log access.
  [[nodiscard]] sim::FailureInjector& injector() noexcept {
    return injector_;
  }

  // --- arming helpers (targets enumerated in sorted order) ---

  /// Random node crashes across every node of `cluster`; crashed nodes
  /// rejoin after Schedule::mean_time_to_repair when it is positive.
  void arm_node_crashes(const std::string& cluster,
                        sim::FailureInjector::Schedule schedule);

  /// Random stragglers: nodes slow down by Schedule::magnitude (a
  /// duration multiplier > 1) and return to normal speed after the
  /// repair interval.
  void arm_slow_nodes(const std::string& cluster,
                      sim::FailureInjector::Schedule schedule);

  /// Spot-style pilot preemption across the session's current pilots.
  void arm_pilot_preemptions(sim::FailureInjector::Schedule schedule);

  /// Link flaps across every cluster pair of the session.
  void arm_link_flaps(sim::FailureInjector::Schedule schedule);

  /// Store crashes across `zones` (each must name a declared store for
  /// store_restore to know the capacity to re-declare).
  void arm_store_crashes(std::vector<std::string> zones,
                         sim::FailureInjector::Schedule schedule);

 private:
  void on_node_crash(const std::string& node_id);
  void on_node_restore(const std::string& node_id);
  void on_pilot_preempt(const std::string& pilot_uid);
  void on_slow_node(const std::string& node_id, double magnitude);
  void on_node_normal(const std::string& node_id);
  void on_link_down(const std::string& pair);
  void on_link_up(const std::string& pair);
  void on_store_crash(const std::string& zone);
  void on_store_restore(const std::string& zone);

  /// Emits a fault/repair instant span ("fault" category) and ticks
  /// the "fault.injected" / "fault.repaired" counters. No-op while
  /// tracing is disabled.
  void trace_fault(const char* name, const std::string& target,
                   bool repair);

  /// Node lookup across every cluster; nullptr when unknown.
  [[nodiscard]] platform::Node* find_node(const std::string& node_id);

  /// Pilot uids (sorted) whose reservation contains `node`.
  [[nodiscard]] std::vector<std::string> pilots_of(
      const platform::Node& node) const;

  Session& session_;
  sim::FailureInjector injector_;
  common::Logger log_;
  /// Capacity of crashed stores, so store_restore can re-declare them.
  std::map<std::string, double> failed_store_capacity_;
};

}  // namespace ripple::core
