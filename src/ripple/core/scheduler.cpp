#include "ripple/core/scheduler.hpp"

#include <algorithm>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"
#include "ripple/platform/cluster.hpp"

namespace ripple::core {

Scheduler::Scheduler(Runtime& runtime, SchedulerPolicy policy)
    : runtime_(runtime),
      policy_(policy),
      log_(runtime.make_logger("scheduler")) {}

void Scheduler::add_pilot(Pilot& pilot) {
  ensure(pilots_.count(pilot.uid()) == 0, Errc::invalid_state,
         strutil::cat("pilot ", pilot.uid(), " already registered"));
  PilotEntry entry;
  entry.pilot = &pilot;
  pilots_.emplace(pilot.uid(), std::move(entry));
}

void Scheduler::remove_pilot(const std::string& pilot_uid) {
  pilots_.erase(pilot_uid);
}

Scheduler::PilotEntry& Scheduler::entry_for(const std::string& pilot_uid) {
  const auto it = pilots_.find(pilot_uid);
  ensure(it != pilots_.end(), Errc::not_found,
         strutil::cat("unknown pilot '", pilot_uid, "'"));
  return it->second;
}

void Scheduler::submit(const std::string& pilot_uid,
                       ScheduleRequest request) {
  ensure(static_cast<bool>(request.granted), Errc::invalid_argument,
         "schedule request needs a granted callback");
  PilotEntry& entry = entry_for(pilot_uid);

  // Reject requests that exceed the largest node outright.
  const bool can_ever_fit = std::any_of(
      entry.pilot->nodes().begin(), entry.pilot->nodes().end(),
      [&](const platform::Node* node) {
        return request.cores <= node->spec().cores &&
               request.gpus <= node->spec().gpus &&
               request.mem_gb <= node->spec().mem_gb;
      });
  ensure(can_ever_fit, Errc::capacity,
         strutil::cat("request ", request.uid, " (", request.cores, "c/",
                      request.gpus, "g) cannot fit any node of pilot ",
                      pilot_uid));

  Waiting waiting{std::move(request), next_sequence_++,
                  runtime_.loop().now()};
  // Insert keeping (priority desc, sequence asc) order.
  auto position = std::find_if(
      entry.waiting.begin(), entry.waiting.end(), [&](const Waiting& w) {
        return w.request.priority < waiting.request.priority;
      });
  entry.waiting.insert(position, std::move(waiting));
  try_schedule(entry);
}

bool Scheduler::cancel(const std::string& pilot_uid,
                       const std::string& request_uid) {
  PilotEntry& entry = entry_for(pilot_uid);
  const auto it = std::find_if(
      entry.waiting.begin(), entry.waiting.end(),
      [&](const Waiting& w) { return w.request.uid == request_uid; });
  if (it == entry.waiting.end()) return false;
  entry.waiting.erase(it);
  return true;
}

void Scheduler::release(const std::string& pilot_uid,
                        const platform::Slot& slot) {
  PilotEntry& entry = entry_for(pilot_uid);
  platform::Node* node = entry.pilot->cluster().find_node(slot.node_id);
  ensure(node != nullptr, Errc::not_found,
         strutil::cat("release on unknown node '", slot.node_id, "'"));
  node->release(slot);
  try_schedule(entry);
}

void Scheduler::try_schedule(PilotEntry& entry) {
  auto it = entry.waiting.begin();
  while (it != entry.waiting.end()) {
    platform::Node* placed = nullptr;
    for (platform::Node* node : entry.pilot->nodes()) {
      if (node->can_fit(it->request.cores, it->request.gpus,
                        it->request.mem_gb)) {
        placed = node;
        break;
      }
    }
    if (placed == nullptr) {
      if (policy_ == SchedulerPolicy::fifo) return;  // head blocks queue
      ++it;
      continue;
    }
    platform::Slot slot =
        placed->allocate(it->request.cores, it->request.gpus,
                         it->request.mem_gb);
    wait_times_.add(runtime_.loop().now() - it->enqueued_at);
    ++granted_;
    auto callback = std::move(it->request.granted);
    it = entry.waiting.erase(it);
    runtime_.loop().post(
        [callback = std::move(callback), slot = std::move(slot), placed] {
          callback(slot, placed);
        });
  }
}

std::size_t Scheduler::queue_length(const std::string& pilot_uid) const {
  const auto it = pilots_.find(pilot_uid);
  return it == pilots_.end() ? 0 : it->second.waiting.size();
}

}  // namespace ripple::core
