#include "ripple/core/scheduler.hpp"

#include <algorithm>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"
#include "ripple/platform/cluster.hpp"

namespace ripple::core {

Scheduler::Scheduler(Runtime& runtime, SchedulerPolicy policy)
    : runtime_(runtime),
      policy_(policy),
      log_(runtime.make_logger("scheduler")) {}

void Scheduler::set_policy(SchedulerPolicy policy) noexcept {
  if (policy == policy_) return;
  policy_ = policy;
  // Queued entries were filtered under the old policy's invariants; the
  // next submit must rescan the whole queue, not just the new entry.
  for (auto& [uid, entry] : pilots_) entry.needs_full_scan = true;
}

void Scheduler::add_pilot(Pilot& pilot) {
  ensure(pilots_.count(pilot.uid()) == 0, Errc::invalid_state,
         strutil::cat("pilot ", pilot.uid(), " already registered"));
  PilotEntry& entry = pilots_[pilot.uid()];
  try {
    entry.pilot = &pilot;
    entry.index.attach(pilot.nodes());
    for (const platform::Node* node : pilot.nodes()) {
      const platform::NodeSpec& spec = node->spec();
      entry.total_cores += spec.cores;
      entry.total_gpus += spec.gpus;
      entry.total_mem += spec.mem_gb;
      const bool seen = std::any_of(
          entry.distinct_specs.begin(), entry.distinct_specs.end(),
          [&](const platform::NodeSpec& s) {
            return s.cores == spec.cores && s.gpus == spec.gpus &&
                   s.mem_gb == spec.mem_gb;
          });
      if (!seen) entry.distinct_specs.push_back(spec);
    }
  } catch (...) {
    // Don't leave a half-registered pilot behind (e.g. a node already
    // indexed by another pilot).
    pilots_.erase(pilot.uid());
    throw;
  }
}

void Scheduler::remove_pilot(const std::string& pilot_uid) {
  pilots_.erase(pilot_uid);
}

std::size_t Scheduler::reschedule(const std::string& pilot_uid) {
  PilotEntry& entry = entry_for(pilot_uid);
  const std::size_t grants = try_schedule(entry);
  trace_pass(entry, grants);
  return grants;
}

std::size_t Scheduler::waiting_total() const {
  std::size_t total = 0;
  for (const auto& [uid, entry] : pilots_) total += entry.waiting.size();
  return total;
}

void Scheduler::trace_pass(const PilotEntry& entry, std::size_t grants) {
  auto& tracer = runtime_.tracer();
  if (!tracer.enabled()) return;
  const double now = runtime_.loop().now();
  tracer.instant("place", "sched", entry.pilot->uid(), now, 0,
                 {{"grants", strutil::cat(grants)},
                  {"queued", strutil::cat(entry.waiting.size())}});
}

Scheduler::PilotEntry& Scheduler::entry_for(const std::string& pilot_uid) {
  const auto it = pilots_.find(pilot_uid);
  ensure(it != pilots_.end(), Errc::not_found,
         strutil::cat("unknown pilot '", pilot_uid, "'"));
  return it->second;
}

namespace {

/// True when some node shape covers the request in every dimension.
bool specs_cover(const std::vector<platform::NodeSpec>& specs,
                 std::size_t cores, std::size_t gpus, double mem_gb) {
  return std::any_of(specs.begin(), specs.end(),
                     [&](const platform::NodeSpec& spec) {
                       return cores <= spec.cores && gpus <= spec.gpus &&
                              mem_gb <= spec.mem_gb;
                     });
}

}  // namespace

bool Scheduler::fits_pilot(const std::string& pilot_uid, std::size_t cores,
                           std::size_t gpus, double mem_gb) const {
  const auto it = pilots_.find(pilot_uid);
  ensure(it != pilots_.end(), Errc::not_found,
         strutil::cat("unknown pilot '", pilot_uid, "'"));
  return specs_cover(it->second.distinct_specs, cores, gpus, mem_gb);
}

void Scheduler::validate_fits_pilot(const PilotEntry& entry,
                                    const ScheduleRequest& request) const {
  ensure(static_cast<bool>(request.granted), Errc::invalid_argument,
         "schedule request needs a granted callback");
  // Reject requests that exceed every node shape outright. Pilots are
  // typically homogeneous, so this is one comparison.
  ensure(specs_cover(entry.distinct_specs, request.cores, request.gpus,
                     request.mem_gb),
         Errc::capacity,
         strutil::cat("request ", request.uid, " (", request.cores, "c/",
                      request.gpus, "g) cannot fit any node of pilot ",
                      entry.pilot->uid()));
}

WaitQueue::Key Scheduler::enqueue(PilotEntry& entry,
                                  ScheduleRequest request) {
  const WaitQueue::Key key{request.priority, next_sequence_++};
  entry.waiting.push(
      key, WaitQueue::Entry{std::move(request), runtime_.loop().now()});
  return key;
}

void Scheduler::submit(const std::string& pilot_uid,
                       ScheduleRequest request) {
  PilotEntry& entry = entry_for(pilot_uid);
  validate_fits_pilot(entry, request);
  const WaitQueue::Key key = enqueue(entry, std::move(request));
  if (entry.needs_full_scan) {
    try_schedule(entry);
  } else {
    try_place_new(entry, key);
  }
}

std::size_t Scheduler::submit_all(const std::string& pilot_uid,
                                  std::vector<ScheduleRequest> requests) {
  PilotEntry& entry = entry_for(pilot_uid);
  for (const ScheduleRequest& request : requests) {
    validate_fits_pilot(entry, request);
  }
  try {
    for (ScheduleRequest& request : requests) {
      enqueue(entry, std::move(request));
    }
  } catch (...) {
    // A duplicate uid mid-batch must not strand the already-enqueued
    // requests without a placement pass (the submit fast path would
    // never look at them again).
    try_schedule(entry);
    throw;
  }
  const std::size_t grants = try_schedule(entry);
  trace_pass(entry, grants);
  return grants;
}

bool Scheduler::cancel(const std::string& pilot_uid,
                       const std::string& request_uid) {
  PilotEntry& entry = entry_for(pilot_uid);
  const bool was_head = !entry.waiting.empty() &&
                        entry.waiting.begin()->second.request.uid ==
                            request_uid;
  if (!entry.waiting.erase_uid(request_uid)) return false;
  // A fifo queue head may have been the only thing blocking placeable
  // successors. Matching the legacy scheduler, cancel itself does not
  // re-run placement (grant order stays bit-identical); the flag makes
  // the next submit rescan the whole queue instead of fast-pathing.
  if (was_head && policy_ == SchedulerPolicy::fifo) {
    entry.needs_full_scan = true;
  }
  return true;
}

void Scheduler::release(const std::string& pilot_uid,
                        const platform::Slot& slot) {
  PilotEntry& entry = entry_for(pilot_uid);
  platform::Node* node = entry.pilot->cluster().find_node(slot.node_id);
  ensure(node != nullptr, Errc::not_found,
         strutil::cat("release on unknown node '", slot.node_id, "'"));
  node->release(slot);  // capacity index updates via the listener
  try_schedule(entry);
}

WaitQueue::iterator Scheduler::grant(PilotEntry& entry,
                                     WaitQueue::iterator position,
                                     platform::Node& node, GrantSink* sink) {
  ScheduleRequest& request = position->second.request;
  platform::Slot slot =
      node.allocate(request.cores, request.gpus, request.mem_gb);
  // The grant's share cost is fixed here, against the pilot it landed
  // on; it is charged to the tenant at commit time, in merged order.
  double share_cost = 0.0;
  if (!tenant_weights_.empty() && !request.tenant.empty()) {
    share_cost =
        dominant_fraction(entry, request) / weight_for(request.tenant);
  }
  if (sink != nullptr) {
    // Sharded pass: only pilot-local state may change here. The shard
    // field of the key is stamped by run_sharded_passes; sequence is
    // the request's globally unique wait-queue sequence, so the merged
    // commit order is invariant under the shard count.
    PendingGrant pending;
    pending.key = common::MergeKey{position->second.enqueued_at,
                                   position->first.sequence, 0};
    pending.enqueued_at = position->second.enqueued_at;
    pending.uid = request.uid;
    pending.tenant = request.tenant;
    pending.share_cost = share_cost;
    pending.slot = std::move(slot);
    pending.node = &node;
    pending.callback = std::move(request.granted);
    sink->push_back(std::move(pending));
    return entry.waiting.erase(position);
  }
  const double enqueued_at = position->second.enqueued_at;
  std::string uid = request.uid;
  std::string tenant = request.tenant;
  auto callback = std::move(request.granted);
  const auto next = entry.waiting.erase(position);
  commit_grant(enqueued_at, uid, tenant, share_cost, std::move(slot), &node,
               std::move(callback));
  return next;
}

void Scheduler::commit_grant(
    double enqueued_at, const std::string& uid, const std::string& tenant,
    double share_cost, platform::Slot slot, platform::Node* node,
    std::function<void(platform::Slot, platform::Node*)> callback) {
  wait_times_.add(runtime_.loop().now() - enqueued_at);
  ++granted_;
  runtime_.counters().add("sched.grants");
  if (!tenant.empty()) {
    runtime_.counters().add(strutil::cat("sched.grants.", tenant));
    if (share_cost > 0.0) tenant_shares_[tenant] += share_cost;
  }
  grant_hash_ = common::fnv1a(grant_hash_, uid);
  grant_hash_ = common::fnv1a(grant_hash_, node->id());
  grant_hash_ = common::fnv1a(grant_hash_,
                              static_cast<std::uint64_t>(slot.cores));
  grant_hash_ = common::fnv1a(grant_hash_,
                              static_cast<std::uint64_t>(slot.gpus));
  runtime_.loop().post([callback = std::move(callback),
                        slot = std::move(slot),
                        placed = node] { callback(slot, placed); });
}

void Scheduler::set_locality_oracle(LocalityOracle oracle) {
  oracle_ = std::move(oracle);
}

void Scheduler::set_tenant_weight(const std::string& tenant, double weight) {
  ensure(!tenant.empty(), Errc::invalid_argument,
         "fair-share weight needs a tenant");
  ensure(weight > 0.0, Errc::invalid_argument,
         "fair-share weight must be > 0");
  tenant_weights_[tenant] = weight;
  // The scan order just changed; the submit fast path's only-the-new-
  // entry-can-fit invariant still holds, but a full rescan keeps the
  // first fair pass from inheriting a stale filtered queue.
  for (auto& [uid, entry] : pilots_) entry.needs_full_scan = true;
}

double Scheduler::tenant_share(const std::string& tenant) const {
  const auto it = tenant_shares_.find(tenant);
  return it == tenant_shares_.end() ? 0.0 : it->second;
}

double Scheduler::weight_for(const std::string& tenant) const {
  const auto it = tenant_weights_.find(tenant);
  return it == tenant_weights_.end() ? 1.0 : it->second;
}

double Scheduler::dominant_fraction(const PilotEntry& entry,
                                    const ScheduleRequest& request) const {
  double fraction =
      entry.total_cores > 0
          ? static_cast<double>(request.cores) /
                static_cast<double>(entry.total_cores)
          : 0.0;
  if (request.gpus > 0 && entry.total_gpus > 0) {
    fraction = std::max(fraction,
                        static_cast<double>(request.gpus) /
                            static_cast<double>(entry.total_gpus));
  }
  if (request.mem_gb > 0.0 && entry.total_mem > 0.0) {
    fraction = std::max(fraction, request.mem_gb / entry.total_mem);
  }
  return fraction;
}

std::size_t Scheduler::try_schedule(PilotEntry& entry, GrantSink* sink) {
  if (!tenant_weights_.empty() && policy_ == SchedulerPolicy::backfill) {
    return try_schedule_fair(entry, sink);
  }
  if (oracle_ && policy_ == SchedulerPolicy::backfill) {
    return try_schedule_data_aware(entry, sink);
  }
  std::size_t grants = 0;
  auto it = entry.waiting.begin();
  while (it != entry.waiting.end()) {
    const ScheduleRequest& request = it->second.request;
    platform::Node* node =
        entry.index.first_fit(request.cores, request.gpus, request.mem_gb);
    if (node == nullptr) {
      if (policy_ == SchedulerPolicy::fifo) break;  // head blocks queue
      ++it;
      continue;
    }
    it = grant(entry, it, *node, sink);
    ++grants;
  }
  entry.needs_full_scan = false;
  return grants;
}

std::size_t Scheduler::try_schedule_data_aware(PilotEntry& entry,
                                               GrantSink* sink) {
  std::size_t grants = 0;
  const std::string zone = entry.pilot->cluster().name();
  std::vector<WaitQueue::Key> deferred;  ///< skipped: non-zero footprint
  auto group_begin = entry.waiting.begin();
  while (group_begin != entry.waiting.end()) {
    const int priority = group_begin->first.priority;
    deferred.clear();
    // Pass 1 — resident requests of this priority class, in submission
    // order. With every footprint zero this pass *is* the data-blind
    // scan of the class: capacity only shrinks as grants land, so
    // anything it skips stays unplaceable and pass 2 grants nothing —
    // the conservative bit-identical-order guarantee.
    for (auto it = group_begin;
         it != entry.waiting.end() && it->first.priority == priority;) {
      const ScheduleRequest& request = it->second.request;
      // No declared inputs is the common case; it is resident by
      // definition, so don't pay the oracle's catalog lookup for it.
      if (!request.input_datasets.empty() &&
          oracle_(request.input_datasets, zone) > 0.0) {
        deferred.push_back(it->first);
        ++it;
        continue;
      }
      platform::Node* node = entry.index.first_fit(
          request.cores, request.gpus, request.mem_gb);
      if (node == nullptr) {
        ++it;
        continue;
      }
      const bool at_begin = it == group_begin;
      it = grant(entry, it, *node, sink);
      if (at_begin) group_begin = it;
      ++grants;
    }
    // Pass 2 — non-resident backfill, submission order. Only the
    // requests pass 1 deferred are probed: every resident request it
    // left behind already failed first_fit at capacity that has only
    // shrunk since, so re-probing them would be pure waste (and with
    // nothing deferred this pass is free — the all-resident hot path
    // costs exactly the data-blind scan).
    for (const WaitQueue::Key& key : deferred) {
      const auto it = entry.waiting.find(key);
      const ScheduleRequest& request = it->second.request;
      platform::Node* node = entry.index.first_fit(
          request.cores, request.gpus, request.mem_gb);
      if (node == nullptr) continue;
      const bool at_begin = it == group_begin;
      const auto next = grant(entry, it, *node, sink);
      if (at_begin) group_begin = next;
      ++grants;
    }
    while (group_begin != entry.waiting.end() &&
           group_begin->first.priority == priority) {
      ++group_begin;
    }
  }
  entry.needs_full_scan = false;
  return grants;
}

std::size_t Scheduler::try_schedule_fair(PilotEntry& entry,
                                         GrantSink* sink) {
  // Snapshot the scan order up front: (priority desc, tenant share asc,
  // enqueue time asc, sequence asc). Shares are read-only during a pass
  // (commit_grant is the sole writer and runs after the pass on the
  // batch paths), so the order is a pure function of committed history
  // — identical for every shard count — and the reads race with
  // nothing under the executor.
  struct ScanItem {
    int priority = 0;
    double share = 0.0;
    double enqueued_at = 0.0;
    std::uint64_t sequence = 0;
  };
  std::vector<ScanItem> order;
  order.reserve(entry.waiting.size());
  for (const auto& [key, queued] : entry.waiting) {
    const auto it = tenant_shares_.find(queued.request.tenant);
    order.push_back({key.priority,
                     it == tenant_shares_.end() ? 0.0 : it->second,
                     queued.enqueued_at, key.sequence});
  }
  std::sort(order.begin(), order.end(),
            [](const ScanItem& a, const ScanItem& b) {
              if (a.priority != b.priority) return a.priority > b.priority;
              if (a.share != b.share) return a.share < b.share;
              if (a.enqueued_at != b.enqueued_at) {
                return a.enqueued_at < b.enqueued_at;
              }
              return a.sequence < b.sequence;
            });
  std::size_t grants = 0;
  for (const ScanItem& item : order) {
    const auto it =
        entry.waiting.find(WaitQueue::Key{item.priority, item.sequence});
    if (it == entry.waiting.end()) continue;
    const ScheduleRequest& request = it->second.request;
    platform::Node* node =
        entry.index.first_fit(request.cores, request.gpus, request.mem_gb);
    // Backfill semantics: an unplaceable low-share request does not
    // block higher-share tenants — fairness is enacted by scan order
    // (and by whose grants accumulate share), not by head-of-line
    // blocking. Every entry is probed, so the everything-left-is-
    // unplaceable invariant holds afterwards.
    if (node == nullptr) continue;
    grant(entry, it, *node, sink);
    ++grants;
  }
  entry.needs_full_scan = false;
  return grants;
}

std::size_t Scheduler::run_sharded_passes(
    const std::vector<PilotEntry*>& touched) {
  if (touched.empty()) return 0;
  const std::size_t nshards =
      (executor_ != nullptr && executor_->shards() > 1)
          ? std::min<std::size_t>(executor_->shards(), touched.size())
          : 1;
  // Round-robin pilots over shards: shard s owns pilots s, s+nshards, …
  // Each pilot's wait queue, capacity index and nodes belong to exactly
  // one shard (a node has one exclusive capacity listener), so the
  // passes share no mutable state. Grants are buffered, not committed.
  std::vector<GrantSink> buffers(nshards);
  // Per-shard trace lanes: lane records carry (pass time, pilot index)
  // merge keys, so the committed span order is invariant under the
  // shard count — same protocol as the grants themselves.
  auto& tracer = runtime_.tracer();
  const bool traced = tracer.enabled();
  const double pass_time = runtime_.loop().now();
  if (traced) tracer.begin_lanes(nshards);
  const auto pass = [&](std::size_t shard) {
    GrantSink& sink = buffers[shard];
    for (std::size_t p = shard; p < touched.size(); p += nshards) {
      const std::size_t grants = try_schedule(*touched[p], &sink);
      if (traced) {
        tracer.lane_complete(
            shard,
            common::MergeKey{pass_time, p, static_cast<std::uint32_t>(shard)},
            "place", "sched", touched[p]->pilot->uid(), pass_time, pass_time,
            {{"grants", strutil::cat(grants)},
             {"queued", strutil::cat(touched[p]->waiting.size())}});
      }
    }
    for (PendingGrant& pending : sink) {
      pending.key.shard = static_cast<std::uint32_t>(shard);
    }
  };
  if (nshards == 1) {
    pass(0);
  } else {
    executor_->run(nshards, pass);
  }
  if (traced) tracer.commit_lanes();
  return commit_merged(std::move(buffers));
}

std::size_t Scheduler::commit_merged(std::vector<GrantSink> buffers) {
  // Merge in (enqueue time, request sequence, shard) order and commit
  // serially. Sequences are globally unique, so this order is a pure
  // function of the grant records — bit-identical for any shard count.
  std::vector<PendingGrant> merged = common::merge_shards(
      std::move(buffers),
      [](const PendingGrant& pending) { return pending.key; });
  for (PendingGrant& pending : merged) {
    commit_grant(pending.enqueued_at, pending.uid, pending.tenant,
                 pending.share_cost, std::move(pending.slot), pending.node,
                 std::move(pending.callback));
  }
  return merged.size();
}

std::size_t Scheduler::submit_batch(std::vector<PilotBatch> batches) {
  // Validate everything first so a bad request leaves no partial state.
  for (const PilotBatch& batch : batches) {
    const PilotEntry& entry = entry_for(batch.pilot_uid);
    for (const ScheduleRequest& request : batch.requests) {
      validate_fits_pilot(entry, request);
    }
  }
  std::vector<PilotEntry*> touched;
  const auto touch = [&](PilotEntry& entry) {
    if (std::find(touched.begin(), touched.end(), &entry) == touched.end()) {
      touched.push_back(&entry);
    }
  };
  try {
    // Enqueue in input order on the calling thread: sequence assignment
    // is identical to per-pilot submit_all calls in the same order.
    for (PilotBatch& batch : batches) {
      PilotEntry& entry = entry_for(batch.pilot_uid);
      touch(entry);
      for (ScheduleRequest& request : batch.requests) {
        enqueue(entry, std::move(request));
      }
    }
  } catch (...) {
    // Same strand protection as submit_all: a duplicate uid mid-batch
    // must not leave enqueued requests without a placement pass.
    run_sharded_passes(touched);
    throw;
  }
  return run_sharded_passes(touched);
}

std::size_t Scheduler::release_batch(
    const std::vector<std::pair<std::string, platform::Slot>>& slots) {
  // Group slots per pilot in first-occurrence order so each shard can
  // release its pilots' capacity before re-running their passes.
  std::vector<std::pair<PilotEntry*, std::vector<const platform::Slot*>>>
      grouped;
  for (const auto& [pilot_uid, slot] : slots) {
    PilotEntry& entry = entry_for(pilot_uid);
    auto it = std::find_if(grouped.begin(), grouped.end(),
                           [&](const auto& g) { return g.first == &entry; });
    if (it == grouped.end()) {
      grouped.emplace_back(&entry, std::vector<const platform::Slot*>{});
      it = std::prev(grouped.end());
    }
    // Resolve the node up front (loop-thread, may throw not_found).
    platform::Node* node =
        entry.pilot->cluster().find_node(slot.node_id);
    ensure(node != nullptr, Errc::not_found,
           strutil::cat("release on unknown node '", slot.node_id, "'"));
    it->second.push_back(&slot);
  }
  if (grouped.empty()) return 0;
  const std::size_t nshards =
      (executor_ != nullptr && executor_->shards() > 1)
          ? std::min<std::size_t>(executor_->shards(), grouped.size())
          : 1;
  std::vector<GrantSink> buffers(nshards);
  auto& tracer = runtime_.tracer();
  const bool traced = tracer.enabled();
  const double pass_time = runtime_.loop().now();
  if (traced) tracer.begin_lanes(nshards);
  const auto pass = [&](std::size_t shard) {
    GrantSink& sink = buffers[shard];
    for (std::size_t g = shard; g < grouped.size(); g += nshards) {
      PilotEntry& entry = *grouped[g].first;
      for (const platform::Slot* slot : grouped[g].second) {
        platform::Node* node =
            entry.pilot->cluster().find_node(slot->node_id);
        node->release(*slot);  // index updates via the listener
      }
      const std::size_t grants = try_schedule(entry, &sink);
      if (traced) {
        tracer.lane_complete(
            shard,
            common::MergeKey{pass_time, g, static_cast<std::uint32_t>(shard)},
            "backfill", "sched", entry.pilot->uid(), pass_time, pass_time,
            {{"released", strutil::cat(grouped[g].second.size())},
             {"grants", strutil::cat(grants)}});
      }
    }
    for (PendingGrant& pending : sink) {
      pending.key.shard = static_cast<std::uint32_t>(shard);
    }
  };
  if (nshards == 1) {
    pass(0);
  } else {
    executor_->run(nshards, pass);
  }
  if (traced) tracer.commit_lanes();
  return commit_merged(std::move(buffers));
}

void Scheduler::try_place_new(PilotEntry& entry, WaitQueue::Key key) {
  // Everything already queued was unplaceable at unchanged capacity
  // (try_schedule invariant), so only the new entry can be granted —
  // and under fifo only when it is the queue head.
  auto position = entry.waiting.begin();
  if (policy_ == SchedulerPolicy::fifo) {
    if (position->first.priority != key.priority ||
        position->first.sequence != key.sequence) {
      return;
    }
  } else {
    position = entry.waiting.find(key);
    ensure(position != entry.waiting.end(), Errc::internal,
           "submitted request vanished from wait queue");
  }
  const ScheduleRequest& request = position->second.request;
  platform::Node* node =
      entry.index.first_fit(request.cores, request.gpus, request.mem_gb);
  if (node != nullptr) grant(entry, position, *node);
}

std::size_t Scheduler::queue_length(const std::string& pilot_uid) const {
  const auto it = pilots_.find(pilot_uid);
  return it == pilots_.end() ? 0 : it->second.waiting.size();
}

}  // namespace ripple::core
