#include "ripple/core/scheduler.hpp"

#include <algorithm>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"
#include "ripple/platform/cluster.hpp"

namespace ripple::core {

Scheduler::Scheduler(Runtime& runtime, SchedulerPolicy policy)
    : runtime_(runtime),
      policy_(policy),
      log_(runtime.make_logger("scheduler")) {}

void Scheduler::set_policy(SchedulerPolicy policy) noexcept {
  if (policy == policy_) return;
  policy_ = policy;
  // Queued entries were filtered under the old policy's invariants; the
  // next submit must rescan the whole queue, not just the new entry.
  for (auto& [uid, entry] : pilots_) entry.needs_full_scan = true;
}

void Scheduler::add_pilot(Pilot& pilot) {
  ensure(pilots_.count(pilot.uid()) == 0, Errc::invalid_state,
         strutil::cat("pilot ", pilot.uid(), " already registered"));
  PilotEntry& entry = pilots_[pilot.uid()];
  try {
    entry.pilot = &pilot;
    entry.index.attach(pilot.nodes());
    for (const platform::Node* node : pilot.nodes()) {
      const platform::NodeSpec& spec = node->spec();
      const bool seen = std::any_of(
          entry.distinct_specs.begin(), entry.distinct_specs.end(),
          [&](const platform::NodeSpec& s) {
            return s.cores == spec.cores && s.gpus == spec.gpus &&
                   s.mem_gb == spec.mem_gb;
          });
      if (!seen) entry.distinct_specs.push_back(spec);
    }
  } catch (...) {
    // Don't leave a half-registered pilot behind (e.g. a node already
    // indexed by another pilot).
    pilots_.erase(pilot.uid());
    throw;
  }
}

void Scheduler::remove_pilot(const std::string& pilot_uid) {
  pilots_.erase(pilot_uid);
}

Scheduler::PilotEntry& Scheduler::entry_for(const std::string& pilot_uid) {
  const auto it = pilots_.find(pilot_uid);
  ensure(it != pilots_.end(), Errc::not_found,
         strutil::cat("unknown pilot '", pilot_uid, "'"));
  return it->second;
}

namespace {

/// True when some node shape covers the request in every dimension.
bool specs_cover(const std::vector<platform::NodeSpec>& specs,
                 std::size_t cores, std::size_t gpus, double mem_gb) {
  return std::any_of(specs.begin(), specs.end(),
                     [&](const platform::NodeSpec& spec) {
                       return cores <= spec.cores && gpus <= spec.gpus &&
                              mem_gb <= spec.mem_gb;
                     });
}

}  // namespace

bool Scheduler::fits_pilot(const std::string& pilot_uid, std::size_t cores,
                           std::size_t gpus, double mem_gb) const {
  const auto it = pilots_.find(pilot_uid);
  ensure(it != pilots_.end(), Errc::not_found,
         strutil::cat("unknown pilot '", pilot_uid, "'"));
  return specs_cover(it->second.distinct_specs, cores, gpus, mem_gb);
}

void Scheduler::validate_fits_pilot(const PilotEntry& entry,
                                    const ScheduleRequest& request) const {
  ensure(static_cast<bool>(request.granted), Errc::invalid_argument,
         "schedule request needs a granted callback");
  // Reject requests that exceed every node shape outright. Pilots are
  // typically homogeneous, so this is one comparison.
  ensure(specs_cover(entry.distinct_specs, request.cores, request.gpus,
                     request.mem_gb),
         Errc::capacity,
         strutil::cat("request ", request.uid, " (", request.cores, "c/",
                      request.gpus, "g) cannot fit any node of pilot ",
                      entry.pilot->uid()));
}

WaitQueue::Key Scheduler::enqueue(PilotEntry& entry,
                                  ScheduleRequest request) {
  const WaitQueue::Key key{request.priority, next_sequence_++};
  entry.waiting.push(
      key, WaitQueue::Entry{std::move(request), runtime_.loop().now()});
  return key;
}

void Scheduler::submit(const std::string& pilot_uid,
                       ScheduleRequest request) {
  PilotEntry& entry = entry_for(pilot_uid);
  validate_fits_pilot(entry, request);
  const WaitQueue::Key key = enqueue(entry, std::move(request));
  if (entry.needs_full_scan) {
    try_schedule(entry);
  } else {
    try_place_new(entry, key);
  }
}

std::size_t Scheduler::submit_all(const std::string& pilot_uid,
                                  std::vector<ScheduleRequest> requests) {
  PilotEntry& entry = entry_for(pilot_uid);
  for (const ScheduleRequest& request : requests) {
    validate_fits_pilot(entry, request);
  }
  try {
    for (ScheduleRequest& request : requests) {
      enqueue(entry, std::move(request));
    }
  } catch (...) {
    // A duplicate uid mid-batch must not strand the already-enqueued
    // requests without a placement pass (the submit fast path would
    // never look at them again).
    try_schedule(entry);
    throw;
  }
  return try_schedule(entry);
}

bool Scheduler::cancel(const std::string& pilot_uid,
                       const std::string& request_uid) {
  PilotEntry& entry = entry_for(pilot_uid);
  const bool was_head = !entry.waiting.empty() &&
                        entry.waiting.begin()->second.request.uid ==
                            request_uid;
  if (!entry.waiting.erase_uid(request_uid)) return false;
  // A fifo queue head may have been the only thing blocking placeable
  // successors. Matching the legacy scheduler, cancel itself does not
  // re-run placement (grant order stays bit-identical); the flag makes
  // the next submit rescan the whole queue instead of fast-pathing.
  if (was_head && policy_ == SchedulerPolicy::fifo) {
    entry.needs_full_scan = true;
  }
  return true;
}

void Scheduler::release(const std::string& pilot_uid,
                        const platform::Slot& slot) {
  PilotEntry& entry = entry_for(pilot_uid);
  platform::Node* node = entry.pilot->cluster().find_node(slot.node_id);
  ensure(node != nullptr, Errc::not_found,
         strutil::cat("release on unknown node '", slot.node_id, "'"));
  node->release(slot);  // capacity index updates via the listener
  try_schedule(entry);
}

WaitQueue::iterator Scheduler::grant(PilotEntry& entry,
                                     WaitQueue::iterator position,
                                     platform::Node& node) {
  ScheduleRequest& request = position->second.request;
  platform::Slot slot =
      node.allocate(request.cores, request.gpus, request.mem_gb);
  wait_times_.add(runtime_.loop().now() - position->second.enqueued_at);
  ++granted_;
  auto callback = std::move(request.granted);
  const auto next = entry.waiting.erase(position);
  runtime_.loop().post([callback = std::move(callback),
                        slot = std::move(slot),
                        placed = &node] { callback(slot, placed); });
  return next;
}

void Scheduler::set_locality_oracle(LocalityOracle oracle) {
  oracle_ = std::move(oracle);
}

std::size_t Scheduler::try_schedule(PilotEntry& entry) {
  if (oracle_ && policy_ == SchedulerPolicy::backfill) {
    return try_schedule_data_aware(entry);
  }
  std::size_t grants = 0;
  auto it = entry.waiting.begin();
  while (it != entry.waiting.end()) {
    const ScheduleRequest& request = it->second.request;
    platform::Node* node =
        entry.index.first_fit(request.cores, request.gpus, request.mem_gb);
    if (node == nullptr) {
      if (policy_ == SchedulerPolicy::fifo) break;  // head blocks queue
      ++it;
      continue;
    }
    it = grant(entry, it, *node);
    ++grants;
  }
  entry.needs_full_scan = false;
  return grants;
}

std::size_t Scheduler::try_schedule_data_aware(PilotEntry& entry) {
  std::size_t grants = 0;
  const std::string zone = entry.pilot->cluster().name();
  std::vector<WaitQueue::Key> deferred;  ///< skipped: non-zero footprint
  auto group_begin = entry.waiting.begin();
  while (group_begin != entry.waiting.end()) {
    const int priority = group_begin->first.priority;
    deferred.clear();
    // Pass 1 — resident requests of this priority class, in submission
    // order. With every footprint zero this pass *is* the data-blind
    // scan of the class: capacity only shrinks as grants land, so
    // anything it skips stays unplaceable and pass 2 grants nothing —
    // the conservative bit-identical-order guarantee.
    for (auto it = group_begin;
         it != entry.waiting.end() && it->first.priority == priority;) {
      const ScheduleRequest& request = it->second.request;
      // No declared inputs is the common case; it is resident by
      // definition, so don't pay the oracle's catalog lookup for it.
      if (!request.input_datasets.empty() &&
          oracle_(request.input_datasets, zone) > 0.0) {
        deferred.push_back(it->first);
        ++it;
        continue;
      }
      platform::Node* node = entry.index.first_fit(
          request.cores, request.gpus, request.mem_gb);
      if (node == nullptr) {
        ++it;
        continue;
      }
      const bool at_begin = it == group_begin;
      it = grant(entry, it, *node);
      if (at_begin) group_begin = it;
      ++grants;
    }
    // Pass 2 — non-resident backfill, submission order. Only the
    // requests pass 1 deferred are probed: every resident request it
    // left behind already failed first_fit at capacity that has only
    // shrunk since, so re-probing them would be pure waste (and with
    // nothing deferred this pass is free — the all-resident hot path
    // costs exactly the data-blind scan).
    for (const WaitQueue::Key& key : deferred) {
      const auto it = entry.waiting.find(key);
      const ScheduleRequest& request = it->second.request;
      platform::Node* node = entry.index.first_fit(
          request.cores, request.gpus, request.mem_gb);
      if (node == nullptr) continue;
      const bool at_begin = it == group_begin;
      const auto next = grant(entry, it, *node);
      if (at_begin) group_begin = next;
      ++grants;
    }
    while (group_begin != entry.waiting.end() &&
           group_begin->first.priority == priority) {
      ++group_begin;
    }
  }
  entry.needs_full_scan = false;
  return grants;
}

void Scheduler::try_place_new(PilotEntry& entry, WaitQueue::Key key) {
  // Everything already queued was unplaceable at unchanged capacity
  // (try_schedule invariant), so only the new entry can be granted —
  // and under fifo only when it is the queue head.
  auto position = entry.waiting.begin();
  if (policy_ == SchedulerPolicy::fifo) {
    if (position->first.priority != key.priority ||
        position->first.sequence != key.sequence) {
      return;
    }
  } else {
    position = entry.waiting.find(key);
    ensure(position != entry.waiting.end(), Errc::internal,
           "submitted request vanished from wait queue");
  }
  const ScheduleRequest& request = position->second.request;
  platform::Node* node =
      entry.index.first_fit(request.cores, request.gpus, request.mem_gb);
  if (node != nullptr) grant(entry, position, *node);
}

std::size_t Scheduler::queue_length(const std::string& pilot_uid) const {
  const auto it = pilots_.find(pilot_uid);
  return it == pilots_.end() ? 0 : it->second.waiting.size();
}

}  // namespace ripple::core
