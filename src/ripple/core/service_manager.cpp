#include "ripple/core/service_manager.hpp"

#include <algorithm>

#include "ripple/common/error.hpp"
#include "ripple/common/ids.hpp"
#include "ripple/common/statistics.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::core {

namespace {
constexpr sim::Duration kPublishRpcTimeout = 30.0;
constexpr sim::Duration kDrainPollInterval = 0.05;
}  // namespace

ServiceManager::ServiceManager(Runtime& runtime, Scheduler& scheduler,
                               Executor& executor)
    : runtime_(runtime),
      scheduler_(scheduler),
      executor_(executor),
      rng_(runtime.rng().fork("service_manager")),
      log_(runtime.make_logger("service_manager")) {}

// ---------------------------------------------------------------------------
// Lookup helpers
// ---------------------------------------------------------------------------

ServiceManager::Active& ServiceManager::active_for(const std::string& uid) {
  const auto it = services_.find(uid);
  ensure(it != services_.end(), Errc::not_found,
         strutil::cat("unknown service '", uid, "'"));
  return it->second;
}

const ServiceManager::Active& ServiceManager::active_for(
    const std::string& uid) const {
  const auto it = services_.find(uid);
  ensure(it != services_.end(), Errc::not_found,
         strutil::cat("unknown service '", uid, "'"));
  return it->second;
}

const Service& ServiceManager::get(const std::string& uid) const {
  return *active_for(uid).service;
}

Service& ServiceManager::get_mutable(const std::string& uid) {
  return *active_for(uid).service;
}

bool ServiceManager::exists(const std::string& uid) const {
  return services_.count(uid) != 0;
}

std::vector<std::string> ServiceManager::uids() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [uid, active] : services_) out.push_back(uid);
  return out;
}

std::vector<std::string> ServiceManager::endpoints(
    const std::string& name_filter) const {
  std::vector<std::string> out;
  for (const auto& [uid, active] : services_) {
    if (active.service->state() != ServiceState::running) continue;
    if (!name_filter.empty() &&
        active.service->description().name != name_filter) {
      continue;
    }
    out.push_back(active.service->endpoint());
  }
  return out;
}

std::vector<std::string> ServiceManager::running(
    const std::string& name_filter) const {
  std::vector<std::string> out;
  for (const auto& [uid, active] : services_) {
    if (active.service->state() != ServiceState::running) continue;
    if (!name_filter.empty() &&
        active.service->description().name != name_filter) {
      continue;
    }
    out.push_back(uid);
  }
  return out;
}

std::size_t ServiceManager::count_in_state(ServiceState state) const {
  std::size_t n = 0;
  for (const auto& [uid, active] : services_) {
    if (active.service->state() == state) ++n;
  }
  return n;
}

std::size_t ServiceManager::count_active(
    const std::string& name_filter) const {
  std::size_t n = 0;
  for (const auto& [uid, active] : services_) {
    if (is_terminal(active.service->state())) continue;
    if (!name_filter.empty() &&
        active.service->description().name != name_filter) {
      continue;
    }
    ++n;
  }
  return n;
}

std::size_t ServiceManager::total_outstanding(
    const std::string& name_filter) const {
  std::size_t n = 0;
  for (const auto& [uid, active] : services_) {
    if (active.service->state() != ServiceState::running) continue;
    if (!name_filter.empty() &&
        active.service->description().name != name_filter) {
      continue;
    }
    if (active.program) n += active.program->outstanding();
  }
  return n;
}

std::size_t ServiceManager::outstanding_of(const std::string& uid) const {
  const Active& active = active_for(uid);
  return active.program ? active.program->outstanding() : 0;
}

double ServiceManager::window_latency_quantile(
    const std::string& name_filter, double q) const {
  const sim::SimTime now = runtime_.loop().now();
  std::vector<double> samples;
  for (const auto& [uid, active] : services_) {
    if (active.service->state() != ServiceState::running) continue;
    if (!name_filter.empty() &&
        active.service->description().name != name_filter) {
      continue;
    }
    if (active.program) {
      active.program->collect_window_latencies(now, samples);
    }
  }
  if (samples.empty()) return -1.0;
  std::sort(samples.begin(), samples.end());
  return common::quantile_sorted(samples, q);
}

std::size_t ServiceManager::count_bootstrapping(
    const std::string& pilot_uid) const {
  std::size_t n = 0;
  for (const auto& [uid, active] : services_) {
    if (active.service->pilot_uid() != pilot_uid) continue;
    switch (active.service->state()) {
      case ServiceState::scheduling:
      case ServiceState::scheduled:
      case ServiceState::launching:
      case ServiceState::initializing:
      case ServiceState::publishing: ++n; break;
      default: break;
    }
  }
  return n;
}

ServiceProgram* ServiceManager::program(const std::string& uid) {
  return active_for(uid).program.get();
}

json::Value ServiceManager::stats(const std::string& uid) const {
  const Active& active = active_for(uid);
  json::Value out = json::Value::object();
  out.set("uid", uid);
  out.set("name", active.service->description().name);
  out.set("state", to_string(active.service->state()));
  out.set("endpoint", active.service->endpoint());
  out.set("remote", active.service->remote());
  out.set("restarts", active.service->restarts());
  if (active.service->bootstrap().complete()) {
    json::Value boot = json::Value::object();
    boot.set("launch", active.service->bootstrap().launch);
    boot.set("init", active.service->bootstrap().init);
    boot.set("publish", active.service->bootstrap().publish);
    boot.set("total", active.service->bootstrap().total());
    out.set("bootstrap", std::move(boot));
  }
  if (active.program) out.set("program", active.program->stats());
  return out;
}

// ---------------------------------------------------------------------------
// State bookkeeping
// ---------------------------------------------------------------------------

void ServiceManager::set_state(Active& active, ServiceState state) {
  const ServiceState previous = active.service->state();
  active.service->set_state(state, runtime_.loop().now());
  runtime_.publish_state("service", active.service->uid(),
                         to_string(state));
  // Endpoint registry events: entering RUNNING registers the endpoint,
  // leaving it (drain, stop, failure) deregisters it. Subscribers
  // (balancing clients, the autoscaler) reroute traffic accordingly.
  if (previous != ServiceState::running &&
      state == ServiceState::running) {
    publish_endpoint_event(active, /*up=*/true);
  } else if (previous == ServiceState::running &&
             state != ServiceState::running) {
    publish_endpoint_event(active, /*up=*/false);
  }
  recheck_watchers();
}

void ServiceManager::publish_endpoint_event(const Active& active, bool up) {
  // Directory first (synchronous), event second (asynchronous): late
  // subscribers snapshot the directory and cannot miss this change.
  if (up) {
    runtime_.register_endpoint(active.service->description().name,
                               active.service->endpoint());
  } else {
    runtime_.deregister_endpoint(active.service->description().name,
                                 active.service->endpoint());
  }
  json::Value event = json::Value::object();
  event.set("name", active.service->description().name);
  event.set("uid", active.service->uid());
  event.set("endpoint", active.service->endpoint());
  event.set("up", up);
  runtime_.pubsub().publish("endpoints", std::move(event));
}

void ServiceManager::recheck_watchers() {
  for (std::size_t i = 0; i < watchers_.size();) {
    ReadyWatcher& watcher = watchers_[i];
    bool all_running = true;
    bool any_terminal = false;
    for (const auto& uid : watcher.uids) {
      const ServiceState state = get(uid).state();
      if (state != ServiceState::running) all_running = false;
      if (is_terminal(state)) any_terminal = true;
    }
    if (all_running || any_terminal) {
      auto callback = std::move(watcher.on_ready);
      watchers_.erase(watchers_.begin() +
                      static_cast<std::ptrdiff_t>(i));
      const bool ok = all_running;
      runtime_.loop().post([callback = std::move(callback), ok] {
        callback(ok);
      });
    } else {
      ++i;
    }
  }
}

void ServiceManager::when_ready(std::vector<std::string> uids,
                                std::function<void(bool)> on_ready) {
  ensure(static_cast<bool>(on_ready), Errc::invalid_argument,
         "when_ready: empty callback");
  for (const auto& uid : uids) {
    ensure(exists(uid), Errc::not_found,
           strutil::cat("when_ready: unknown service '", uid, "'"));
  }
  watchers_.push_back(ReadyWatcher{std::move(uids), std::move(on_ready)});
  recheck_watchers();
}

// ---------------------------------------------------------------------------
// Registry endpoint (per cluster)
// ---------------------------------------------------------------------------

const std::string& ServiceManager::ensure_registry(
    platform::Cluster& cluster) {
  auto it = registries_.find(cluster.name());
  if (it == registries_.end()) {
    const std::string address = "svcmgr." + cluster.name();
    auto server = std::make_unique<msg::RpcServer>(
        runtime_.router(), address, cluster.head_host());
    server->bind_method(
        "register_endpoint",
        [](std::shared_ptr<msg::Responder> responder) {
          // Registration is acknowledged; the manager's own bookkeeping
          // happens when the publish RPC completes on the service side.
          responder->reply(json::Value::object({{"ok", true}}));
        });
    server->bind_method(
        "heartbeat", [this](std::shared_ptr<msg::Responder> responder) {
          const std::string uid =
              responder->request().payload.get_or("uid", json::Value(""))
                  .as_string();
          const auto found = services_.find(uid);
          if (found != services_.end()) {
            found->second.service->set_last_heartbeat(
                runtime_.loop().now());
            arm_liveness_deadline(uid);
          }
          responder->reply(json::Value::object({{"ok", true}}));
        });
    it = registries_.emplace(cluster.name(), std::move(server)).first;
  }
  static const std::string prefix = "svcmgr.";
  (void)it;
  return registries_.find(cluster.name())->first;
}

// ---------------------------------------------------------------------------
// Submission
// ---------------------------------------------------------------------------

std::string ServiceManager::create_service(Pilot& pilot,
                                           ServiceDescription desc) {
  desc.validate();
  ensure(executor_.programs().has(desc.program), Errc::not_found,
         strutil::cat("service program '", desc.program,
                      "' is not registered"));
  const std::string uid = runtime_.make_uid("svc");
  Active active;
  active.service = std::make_unique<Service>(uid, std::move(desc));
  active.service->set_pilot_uid(pilot.uid());
  active.pilot = &pilot;
  active.cluster = &pilot.cluster();
  ensure_registry(pilot.cluster());
  auto [it, inserted] = services_.emplace(uid, std::move(active));
  ensure(inserted, Errc::internal, "duplicate service uid");
  runtime_.publish_state("service", uid, to_string(ServiceState::created));

  // Readiness timeout covers the whole bootstrap.
  it->second.ready_timer = runtime_.loop().call_after(
      it->second.service->description().ready_timeout, [this, uid] {
        const auto found = services_.find(uid);
        if (found == services_.end()) return;
        if (found->second.service->state() == ServiceState::running) return;
        if (is_terminal(found->second.service->state())) return;
        fail_service(uid, "ready timeout exceeded");
      });
  return uid;
}

std::string ServiceManager::submit(Pilot& pilot, ServiceDescription desc) {
  const std::string uid = create_service(pilot, std::move(desc));
  // Enter the scheduler asynchronously (symmetric with TaskManager):
  // submission order across managers is preserved by the event loop.
  runtime_.loop().post([this, uid] {
    const auto found = services_.find(uid);
    if (found == services_.end()) return;
    if (found->second.service->state() != ServiceState::created) return;
    begin_scheduling(uid);
  });
  return uid;
}

std::vector<std::string> ServiceManager::submit_all(
    Pilot& pilot, std::vector<ServiceDescription> descs) {
  std::vector<std::string> out;
  out.reserve(descs.size());
  // Posted even when a later description throws — already-created
  // services have ready timers armed and must still enter the
  // scheduler, as they would under per-service submission.
  const auto post_batch = [this, &pilot](std::vector<std::string> uids) {
    if (uids.empty()) return;
    runtime_.loop().post([this, &pilot, uids = std::move(uids)] {
      begin_scheduling_batch(pilot, uids);
    });
  };
  try {
    for (auto& desc : descs) {
      out.push_back(create_service(pilot, std::move(desc)));
    }
  } catch (...) {
    post_batch(out);
    throw;
  }
  post_batch(out);
  return out;
}

ScheduleRequest ServiceManager::make_request(const std::string& uid,
                                             Active& active) {
  const ServiceDescription& desc = active.service->description();
  ScheduleRequest request;
  request.uid = uid;
  request.cores = desc.cores;
  request.gpus = desc.gpus;
  request.mem_gb = desc.mem_gb;
  request.priority = desc.priority;
  request.tenant = desc.tenant;
  request.granted = [this, uid](platform::Slot slot, platform::Node* node) {
    on_granted(uid, std::move(slot), node);
  };
  return request;
}

void ServiceManager::begin_scheduling(const std::string& uid) {
  Active& active = active_for(uid);
  // Oversized services fail individually; this runs inside an
  // event-loop callback, where a Scheduler::submit throw would abort
  // the run.
  const ServiceDescription& desc = active.service->description();
  if (!scheduler_.fits_pilot(active.pilot->uid(), desc.cores, desc.gpus,
                             desc.mem_gb)) {
    fail_service(uid, strutil::cat("request (", desc.cores, "c/",
                                   desc.gpus,
                                   "g) cannot fit any node of pilot ",
                                   active.pilot->uid()));
    return;
  }
  set_state(active, ServiceState::scheduling);
  scheduler_.submit(active.pilot->uid(), make_request(uid, active));
}

void ServiceManager::begin_scheduling_batch(
    Pilot& pilot, const std::vector<std::string>& uids) {
  std::vector<ScheduleRequest> requests;
  requests.reserve(uids.size());
  for (const auto& uid : uids) {
    const auto it = services_.find(uid);
    if (it == services_.end()) continue;
    if (it->second.service->state() != ServiceState::created) continue;
    // Fail oversized services individually; Scheduler::submit_all
    // validates the whole batch up front, and one impossible request
    // must not strand its siblings.
    const ServiceDescription& desc = it->second.service->description();
    if (!scheduler_.fits_pilot(pilot.uid(), desc.cores, desc.gpus,
                               desc.mem_gb)) {
      fail_service(uid, strutil::cat("request (", desc.cores, "c/",
                                     desc.gpus,
                                     "g) cannot fit any node of pilot ",
                                     pilot.uid()));
      continue;
    }
    set_state(it->second, ServiceState::scheduling);
    requests.push_back(make_request(uid, it->second));
  }
  if (!requests.empty()) {
    scheduler_.submit_all(pilot.uid(), std::move(requests));
  }
}

void ServiceManager::on_granted(const std::string& uid, platform::Slot slot,
                                platform::Node* node) {
  const auto it = services_.find(uid);
  if (it == services_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.service->state())) {
    // Canceled while queued but after grant was posted: give it back.
    scheduler_.release(active.pilot->uid(), slot);
    return;
  }
  active.service->set_slot(std::move(slot));
  active.slot_held = true;
  active.host = node->host();
  set_state(active, ServiceState::scheduled);

  set_state(active, ServiceState::launching);
  active.cohort_at_launch = count_bootstrapping(active.pilot->uid());
  executor_.launch(*active.cluster, active.cohort_at_launch,
                   [this, uid](sim::Duration) { on_launched(uid); });
}

json::Value ServiceManager::contention_config(const Active& active) const {
  // Injected knobs that let programs model shared-filesystem contention
  // during concurrent model loads (Fig. 3: init under 640 loaders).
  json::Value config = active.service->description().config;
  std::size_t initializing = 0;
  for (const auto& [uid, other] : services_) {
    if (other.service->pilot_uid() == active.service->pilot_uid() &&
        other.service->state() == ServiceState::initializing) {
      ++initializing;
    }
  }
  const auto& profile = active.cluster->profile();
  config.set("concurrent_inits", initializing + 1);
  config.set("fs_contention_coeff", profile.fs_contention_coeff);
  config.set("fs_contention_threshold", profile.fs_contention_threshold);
  return config;
}

void ServiceManager::on_launched(const std::string& uid) {
  const auto it = services_.find(uid);
  if (it == services_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.service->state())) return;
  set_state(active, ServiceState::initializing);

  active.program =
      executor_.programs().create(active.service->description());
  active.ctx = std::make_unique<ExecutionContext>(executor_.make_context(
      uid, active.host, contention_config(active)));
  active.program->init(
      *active.ctx, [this, uid] { on_initialized(uid); },
      [this, uid](const std::string& error) {
        fail_service(uid, strutil::cat("program init failed: ", error));
      });
}

void ServiceManager::on_initialized(const std::string& uid) {
  const auto it = services_.find(uid);
  if (it == services_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.service->state())) return;
  set_state(active, ServiceState::publishing);

  active.server = std::make_unique<msg::RpcServer>(runtime_.router(), uid,
                                                   active.host);
  active.program->bind(*active.server);
  active.server->bind_method(
      "health", [this, uid](std::shared_ptr<msg::Responder> responder) {
        json::Value body = json::Value::object();
        const auto found = services_.find(uid);
        body.set("ok", found != services_.end() &&
                           !found->second.crashed);
        responder->reply(std::move(body));
      });

  // Endpoint publication: local socket/registry setup overhead followed
  // by the registration round-trip to the manager's registry endpoint.
  const sim::Duration overhead =
      active.cluster->profile().endpoint_publish.sample(rng_);
  runtime_.loop().call_after(overhead,
                             [this, uid] { do_publish(uid); });
}

void ServiceManager::do_publish(const std::string& uid) {
  const auto it = services_.find(uid);
  if (it == services_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.service->state())) return;

  active.pub_client = std::make_unique<msg::RpcClient>(
      runtime_.router(), uid + ".pub", active.host);
  json::Value args = json::Value::object();
  args.set("uid", uid);
  args.set("endpoint", uid);
  args.set("name", active.service->description().name);
  active.pub_client->call(
      "svcmgr." + active.cluster->name(), "register_endpoint",
      std::move(args),
      [this, uid](msg::CallResult result) {
        const auto found = services_.find(uid);
        if (found == services_.end()) return;
        if (is_terminal(found->second.service->state())) return;
        if (!result.ok) {
          fail_service(uid, strutil::cat("endpoint publication failed: ",
                                         result.error));
          return;
        }
        on_published(uid);
      },
      kPublishRpcTimeout);
}

void ServiceManager::on_published(const std::string& uid) {
  Active& active = active_for(uid);
  active.pub_client.reset();
  if (active.ready_timer.valid()) {
    runtime_.loop().cancel(active.ready_timer);
    active.ready_timer = {};
  }
  active.service->set_endpoint(uid);
  set_state(active, ServiceState::running);

  // Record the bootstrap decomposition (Fig. 3).
  BootstrapTiming& boot = active.service->bootstrap();
  boot.launch = active.service->duration(ServiceState::launching,
                                         ServiceState::initializing);
  boot.init = active.service->duration(ServiceState::initializing,
                                       ServiceState::publishing);
  boot.publish = active.service->duration(ServiceState::publishing,
                                          ServiceState::running);
  runtime_.metrics().add_bootstrap(metrics::BootstrapRecord{
      uid, boot.launch, boot.init, boot.publish, active.cohort_at_launch});

  if (active.service->description().monitor) start_monitoring(uid);
}

// ---------------------------------------------------------------------------
// Remote services
// ---------------------------------------------------------------------------

std::string ServiceManager::register_remote(platform::Cluster& cluster,
                                            ServiceDescription desc,
                                            std::size_t node_index) {
  desc.validate();
  ensure(executor_.programs().has(desc.program), Errc::not_found,
         strutil::cat("service program '", desc.program,
                      "' is not registered"));
  ensure(node_index < cluster.node_count(), Errc::invalid_argument,
         strutil::cat("node index ", node_index, " out of range for ",
                      cluster.name()));
  const std::string uid = runtime_.make_uid("svc");
  Active active;
  active.service = std::make_unique<Service>(uid, std::move(desc));
  active.service->set_remote(true);
  active.cluster = &cluster;
  active.host = cluster.node(node_index).host();
  auto [it, inserted] = services_.emplace(uid, std::move(active));
  ensure(inserted, Errc::internal, "duplicate service uid");
  runtime_.publish_state("service", uid, to_string(ServiceState::created));

  Active& stored = it->second;
  stored.program =
      executor_.programs().create(stored.service->description());
  stored.ctx = std::make_unique<ExecutionContext>(executor_.make_context(
      uid, stored.host, stored.service->description().config));
  stored.program->init(
      *stored.ctx,
      [this, uid] {
        Active& active = active_for(uid);
        active.server = std::make_unique<msg::RpcServer>(
            runtime_.router(), uid, active.host);
        active.program->bind(*active.server);
        active.service->set_endpoint(uid);
        set_state(active, ServiceState::running);
      },
      [this, uid](const std::string& error) {
        fail_service(uid, strutil::cat("remote init failed: ", error));
      });
  return uid;
}

// ---------------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------------

void ServiceManager::start_monitoring(const std::string& uid) {
  Active& active = active_for(uid);
  active.hb_client = std::make_unique<msg::RpcClient>(
      runtime_.router(), uid + ".hb", active.host);
  active.service->set_last_heartbeat(runtime_.loop().now());
  schedule_heartbeat(uid);
  arm_liveness_deadline(uid);
}

void ServiceManager::schedule_heartbeat(const std::string& uid) {
  Active& active = active_for(uid);
  const sim::Duration interval =
      active.service->description().heartbeat_interval;
  active.hb_send_timer = runtime_.loop().call_after(interval, [this, uid] {
    const auto it = services_.find(uid);
    if (it == services_.end()) return;
    Active& active = it->second;
    if (active.service->state() != ServiceState::running &&
        active.service->state() != ServiceState::draining) {
      return;
    }
    if (active.crashed || !active.hb_client) return;
    json::Value args = json::Value::object();
    args.set("uid", uid);
    active.hb_client->call(
        "svcmgr." + active.cluster->name(), "heartbeat", std::move(args),
        [](msg::CallResult) { /* delivery is what matters */ },
        active.service->description().heartbeat_interval);
    schedule_heartbeat(uid);
  });
}

void ServiceManager::arm_liveness_deadline(const std::string& uid) {
  Active& active = active_for(uid);
  if (active.hb_deadline_timer.valid()) {
    runtime_.loop().cancel(active.hb_deadline_timer);
  }
  const ServiceDescription& desc = active.service->description();
  const sim::Duration window =
      desc.heartbeat_interval * static_cast<double>(desc.heartbeat_misses);
  active.hb_deadline_timer = runtime_.loop().call_after(
      window, [this, uid] { on_liveness_timeout(uid); });
}

void ServiceManager::on_liveness_timeout(const std::string& uid) {
  const auto it = services_.find(uid);
  if (it == services_.end()) return;
  Active& active = it->second;
  if (active.service->state() != ServiceState::running &&
      active.service->state() != ServiceState::draining) {
    return;
  }
  log_.warn(strutil::cat(uid, ": liveness timeout"));
  fail_service(uid, "liveness timeout: heartbeats missed");
}

// ---------------------------------------------------------------------------
// Failure, restart, stop, kill
// ---------------------------------------------------------------------------

void ServiceManager::release_resources(Active& active) {
  if (active.ready_timer.valid()) {
    runtime_.loop().cancel(active.ready_timer);
    active.ready_timer = {};
  }
  if (active.hb_send_timer.valid()) {
    runtime_.loop().cancel(active.hb_send_timer);
    active.hb_send_timer = {};
  }
  if (active.hb_deadline_timer.valid()) {
    runtime_.loop().cancel(active.hb_deadline_timer);
    active.hb_deadline_timer = {};
  }
  active.server.reset();
  active.pub_client.reset();
  active.hb_client.reset();
  if (active.slot_held && active.pilot != nullptr) {
    scheduler_.release(active.pilot->uid(), active.service->slot());
    active.slot_held = false;
  }
}

void ServiceManager::fail_service(const std::string& uid,
                                  const std::string& error) {
  const auto it = services_.find(uid);
  if (it == services_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.service->state())) return;
  log_.error(strutil::cat(uid, ": ", error));
  active.service->set_error(error);
  release_resources(active);
  active.program.reset();
  active.ctx.reset();
  set_state(active, ServiceState::failed);

  const ServiceDescription& desc = active.service->description();
  if (!active.service->remote() && desc.restart_on_failure &&
      active.service->restarts() < desc.max_restarts) {
    active.service->count_restart();
    active.crashed = false;
    log_.info(strutil::cat(uid, ": restarting (attempt ",
                           active.service->restarts(), ")"));
    active.ready_timer = runtime_.loop().call_after(
        desc.ready_timeout, [this, uid] {
          const auto found = services_.find(uid);
          if (found == services_.end()) return;
          if (found->second.service->state() == ServiceState::running) {
            return;
          }
          if (is_terminal(found->second.service->state())) return;
          fail_service(uid, "ready timeout exceeded (restart)");
        });
    begin_scheduling(uid);
  }
}

void ServiceManager::kill(const std::string& uid) {
  Active& active = active_for(uid);
  ensure(active.service->state() == ServiceState::running,
         Errc::invalid_state,
         strutil::cat("kill: service ", uid, " is not running"));
  active.crashed = true;
  active.server.reset();  // endpoint disappears from the router
  if (active.hb_send_timer.valid()) {
    runtime_.loop().cancel(active.hb_send_timer);
    active.hb_send_timer = {};
  }
  log_.warn(strutil::cat(uid, ": killed (fault injection)"));
}

void ServiceManager::stop(const std::string& uid,
                          std::function<void()> on_stopped) {
  Active& active = active_for(uid);
  const ServiceState state = active.service->state();
  if (is_terminal(state)) {
    if (on_stopped) runtime_.loop().post(std::move(on_stopped));
    return;
  }
  if (state != ServiceState::running && state != ServiceState::draining) {
    // Still bootstrapping: cancel.
    scheduler_.cancel(active.service->pilot_uid(), uid);
    release_resources(active);
    active.program.reset();
    set_state(active, ServiceState::canceled);
    if (on_stopped) runtime_.loop().post(std::move(on_stopped));
    return;
  }
  if (state == ServiceState::running) {
    set_state(active, ServiceState::draining);
  }
  finalize_stop(uid, std::move(on_stopped));
}

void ServiceManager::finalize_stop(const std::string& uid,
                                   std::function<void()> on_stopped) {
  const auto it = services_.find(uid);
  if (it == services_.end()) return;
  Active& active = it->second;
  if (is_terminal(active.service->state())) {
    if (on_stopped) runtime_.loop().post(std::move(on_stopped));
    return;
  }
  const std::size_t outstanding =
      active.program ? active.program->outstanding() : 0;
  if (outstanding > 0) {
    runtime_.loop().call_after(
        kDrainPollInterval,
        [this, uid, on_stopped = std::move(on_stopped)]() mutable {
          finalize_stop(uid, std::move(on_stopped));
        });
    return;
  }
  release_resources(active);
  set_state(active, ServiceState::stopped);
  if (on_stopped) runtime_.loop().post(std::move(on_stopped));
}

void ServiceManager::stop_all(std::function<void()> on_all_stopped) {
  std::vector<std::string> to_stop;
  for (const auto& [uid, active] : services_) {
    if (!is_terminal(active.service->state())) to_stop.push_back(uid);
  }
  if (to_stop.empty()) {
    if (on_all_stopped) runtime_.loop().post(std::move(on_all_stopped));
    return;
  }
  auto remaining = std::make_shared<std::size_t>(to_stop.size());
  auto shared_callback = std::make_shared<std::function<void()>>(
      std::move(on_all_stopped));
  for (const auto& uid : to_stop) {
    stop(uid, [remaining, shared_callback] {
      if (--(*remaining) == 0 && *shared_callback) (*shared_callback)();
    });
  }
}

}  // namespace ripple::core
