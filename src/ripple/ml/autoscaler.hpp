#pragma once

/// \file autoscaler.hpp
/// Replica autoscaling for inference services: queue-depth or
/// latency-SLO driven.
///
/// The paper's services are fixed at submission time; its future-work
/// list ("dynamically rerouting requests to less used service
/// instances") implies an elastic pool. The Autoscaler manages one
/// replica group — N copies of a ServiceDescription on one pilot —
/// through the ServiceManager. The default policy polls the group's
/// total outstanding request count (queued + executing, the queue-depth
/// latency proxy) and grows the pool when the per-replica backlog
/// exceeds `scale_up_outstanding`, shrinks it when the backlog falls
/// below `scale_down_outstanding`. Setting `target_p95 > 0` switches to
/// the latency-SLO policy production serving stacks use: the signal is
/// the group's pooled windowed p95 request latency
/// (ServiceManager::window_latency_quantile over the servers' sliding
/// latency windows) — scale up when p95 exceeds `target_p95`, scale
/// down only after `down_sustain` consecutive polls of sustained
/// headroom (p95 below `headroom_fraction * target_p95`, or an empty
/// window). Latencies between the two thresholds are the hysteresis
/// band: the pool holds, so a p95 oscillating around the target cannot
/// flap replicas. Endpoint registration/deregistration rides the
/// ServiceManager's "endpoints" pub/sub events, so balancing clients
/// reroute without any coupling to this class.
///
/// Everything runs on the event loop: same-seed runs make bit-identical
/// scaling decisions (the decision trace is exposed for tests to diff).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ripple/core/session.hpp"

namespace ripple::ml {

struct AutoscalerConfig {
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 4;

  /// Scale up when outstanding requests per RUNNING replica reach this.
  double scale_up_outstanding = 8.0;

  /// Scale down when outstanding per RUNNING replica fall to this.
  double scale_down_outstanding = 1.0;

  sim::Duration poll_interval = 0.25;

  /// Minimum time between two scaling actions (lets a fresh replica
  /// absorb load before the backlog is re-judged).
  sim::Duration cooldown = 1.0;

  /// Latency-SLO policy (enabled when > 0): scale on the group's
  /// windowed p95 request latency against this target (seconds)
  /// instead of queue depth.
  double target_p95 = 0.0;

  /// Scale-down headroom threshold as a fraction of target_p95. p95
  /// values in (headroom_fraction * target_p95, target_p95] are the
  /// hysteresis band: no action.
  double headroom_fraction = 0.5;

  /// Consecutive headroom polls required before a scale-down — a
  /// momentary dip (or a briefly empty window) must not shed capacity.
  std::size_t down_sustain = 4;
};

class Autoscaler {
 public:
  /// One recorded scaling decision (for determinism tests and benches).
  struct Decision {
    sim::SimTime time = 0.0;
    bool up = false;             ///< true: replica added, false: removed
    std::size_t outstanding = 0; ///< group backlog at decision time
    std::size_t replicas = 0;    ///< active replicas after the decision
    double p95 = -1.0;           ///< windowed p95 (SLO policy; -1 = n/a)
  };

  /// `replica` is the template description; its `name` is the group
  /// name used for endpoint events and the ServiceManager's
  /// name-filtered aggregates (total_outstanding drives scaling), so
  /// it must be unique to this autoscaler's group.
  Autoscaler(core::Session& session, core::Pilot& pilot,
             core::ServiceDescription replica, AutoscalerConfig config = {});
  ~Autoscaler();

  Autoscaler(const Autoscaler&) = delete;
  Autoscaler& operator=(const Autoscaler&) = delete;

  /// Submits min_replicas and begins polling. `on_ready` (optional)
  /// fires once the initial replicas are RUNNING (false on bootstrap
  /// failure).
  void start(std::function<void(bool ok)> on_ready = {});

  /// Stops polling and drains every non-terminal replica.
  void stop(std::function<void()> on_stopped = {});

  [[nodiscard]] const std::string& group() const noexcept {
    return replica_.name;
  }

  /// Uids of live (non-terminal) replicas in submission order. Uids
  /// whose service reached a terminal state are pruned on each poll
  /// tick, so the list stays bounded by max_replicas no matter how
  /// often the pool crash-repairs.
  [[nodiscard]] const std::vector<std::string>& replicas() const noexcept {
    return replicas_;
  }

  /// Endpoints of currently RUNNING replicas.
  [[nodiscard]] std::vector<std::string> endpoints() const;

  [[nodiscard]] std::size_t active_replicas() const;
  [[nodiscard]] std::size_t running_replicas() const;
  [[nodiscard]] std::uint64_t scale_ups() const noexcept {
    return scale_ups_;
  }
  [[nodiscard]] std::uint64_t scale_downs() const noexcept {
    return scale_downs_;
  }

  /// The replica a scale-down would drain right now: the RUNNING
  /// replica with the fewest outstanding requests, newest on ties (so
  /// an idle pool sheds its newest replica and keeps endpoint churn
  /// minimal). Empty when nothing is running.
  [[nodiscard]] std::string scale_down_victim() const;

  /// Times the pool was rebuilt after every replica reached a terminal
  /// state (crashes/liveness failures).
  [[nodiscard]] std::uint64_t repairs() const noexcept { return repairs_; }

  /// The group's current pooled windowed p95 request latency, negative
  /// when no replica has a live sample (SLO policy's signal, exposed
  /// for tests and benches).
  [[nodiscard]] double window_p95() const;
  [[nodiscard]] const std::vector<Decision>& decisions() const noexcept {
    return decisions_;
  }

  [[nodiscard]] json::Value stats() const;

 private:
  void poll();
  void schedule_poll();
  void prune_terminal_replicas();
  /// SLO policy body (target_p95 > 0): up on p95 over target, down on
  /// sustained headroom, hold inside the hysteresis band.
  void poll_slo(std::size_t running, std::size_t active);
  void scale_up(std::size_t outstanding, double p95 = -1.0);
  void scale_down(std::size_t outstanding, double p95 = -1.0);
  void repair_pool();

  core::Session& session_;
  core::Pilot& pilot_;
  core::ServiceDescription replica_;
  AutoscalerConfig config_;
  common::Logger log_;
  std::vector<std::string> replicas_;
  std::vector<Decision> decisions_;
  sim::EventLoop::TimerHandle poll_timer_;
  /// Liveness token: callbacks registered with the ServiceManager
  /// capture it weakly and no-op once the autoscaler is destroyed.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  sim::SimTime last_action_ = -1e300;
  /// Consecutive SLO polls that saw sustained headroom.
  std::size_t headroom_polls_ = 0;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
  std::uint64_t repairs_ = 0;
  bool started_ = false;
  bool stopping_ = false;
};

}  // namespace ripple::ml
