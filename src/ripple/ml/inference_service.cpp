#include "ripple/ml/inference_service.hpp"

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::ml {

InferenceProgram::InferenceProgram(const core::ServiceDescription& desc)
    : desc_(desc) {}

void InferenceProgram::init(core::ExecutionContext& ctx, DoneFn done,
                            FailFn fail) {
  const std::string model_name =
      ctx.config.get_or("model", json::Value("noop")).as_string();
  if (!ModelRegistry::global().has(model_name)) {
    fail(strutil::cat("unknown model '", model_name, "'"));
    return;
  }
  const ModelSpec& model = ModelRegistry::global().get(model_name);

  ServerConfig server_config;
  server_config.max_concurrency = static_cast<std::size_t>(
      ctx.config.get_or("max_concurrency", json::Value(1)).as_int());
  server_config.max_queue = static_cast<std::size_t>(
      ctx.config.get_or("max_queue", json::Value(0)).as_int());
  server_config.max_batch = static_cast<std::size_t>(
      ctx.config.get_or("max_batch", json::Value(1)).as_int());
  server_config.batch_window =
      ctx.config.get_or("batch_window", json::Value(0.0)).as_double();
  server_config.continuous =
      ctx.config.get_or("continuous", json::Value(false)).as_bool();
  server_config.latency_window =
      ctx.config.get_or("latency_window", json::Value(10.0)).as_double();
  server_ = std::make_unique<InferenceServer>(
      ctx.loop(), ctx.rng.fork("server"), model, server_config);
  server_->set_trace(&ctx.runtime->tracer(), &ctx.runtime->counters(),
                     ctx.uid);

  if (ctx.config.get_or("preloaded", json::Value(false)).as_bool()) {
    ctx.loop().post(std::move(done));
    return;
  }

  const auto concurrent_loads = static_cast<std::size_t>(
      ctx.config.get_or("concurrent_inits", json::Value(1)).as_int());
  const double fs_coeff =
      ctx.config.get_or("fs_contention_coeff", json::Value(0.0)).as_double();
  const auto fs_threshold = static_cast<std::size_t>(
      ctx.config.get_or("fs_contention_threshold", json::Value(64))
          .as_int());
  const sim::Duration load_time = model.sample_init(
      ctx.rng, concurrent_loads, fs_coeff, fs_threshold);
  ctx.log.debug(strutil::cat("loading model ", model.name, " (",
                             strutil::format_duration(load_time), ")"));
  ctx.loop().call_after(load_time, std::move(done));
}

void InferenceProgram::bind(msg::RpcServer& server) {
  ensure(server_ != nullptr, Errc::invalid_state,
         "bind called before init");
  server.bind_method("infer",
                     [this](std::shared_ptr<msg::Responder> responder) {
                       server_->handle(std::move(responder));
                     });
  server.bind_method("stats",
                     [this](std::shared_ptr<msg::Responder> responder) {
                       responder->reply(server_->stats());
                     });
}

std::size_t InferenceProgram::outstanding() const {
  return server_ ? server_->outstanding() : 0;
}

void InferenceProgram::collect_window_latencies(
    sim::SimTime now, std::vector<double>& out) const {
  if (server_ != nullptr) server_->latency_window().collect(now, out);
}

json::Value InferenceProgram::stats() const {
  return server_ ? server_->stats() : json::Value::object();
}

}  // namespace ripple::ml
