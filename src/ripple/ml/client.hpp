#pragma once

/// \file client.hpp
/// The "inference_client" task payload: a compute task that issues
/// inference requests to service endpoints.
///
/// This is the client side of every experiment in the paper: a task that
/// sends a fixed number of requests (1024 per client in Experiments 2-3)
/// to one or more services, with a configurable number of requests in
/// flight, a load-balancing policy and an optional timeout. Each
/// completed request's timing decomposition is recorded into a named
/// metrics series so benches aggregate the exact stacks of Figs. 4-6.
///
/// Configuration keys (TaskDescription.payload):
///   endpoints      - array of service endpoint strings (required)
///   requests       - total requests to send (default 16)
///   concurrency    - max requests in flight (default 1)
///   series         - metrics series name (default "requests")
///   balancer       - round_robin | random | least_outstanding
///   timeout        - per-request timeout seconds (0 = none)
///   think_time     - pause between a completion and the next send
///   prompt_tokens  - nominal prompt size recorded in the request payload
///   max_retries    - bounded retries per request on reject/failure
///                    (default 0: fail fast, the paper's behaviour)
///   retry_backoff  - first retry delay seconds (default 0.05)
///   retry_multiplier - exponential backoff factor (default 2.0)
///   watch          - service name: subscribe to the ServiceManager's
///                    "endpoints" events and add/remove balancer
///                    endpoints as replicas scale ("" = static set)

#include "ripple/core/executor.hpp"

namespace ripple::ml {

/// Parsed client configuration (exposed for direct use in tests).
struct ClientConfig {
  std::vector<std::string> endpoints;
  std::size_t requests = 16;
  std::size_t concurrency = 1;
  std::string series = "requests";
  std::string balancer = "round_robin";
  sim::Duration timeout = 0.0;
  sim::Duration think_time = 0.0;
  std::int64_t prompt_tokens = 64;

  /// Client-side backpressure: a rejected/failed request is retried up
  /// to max_retries times, waiting retry_backoff * retry_multiplier^n
  /// (jittered 0.5x..1.5x from the task's seeded stream) before attempt
  /// n+1. Each retry re-picks an endpoint, so retries are also what
  /// reroutes traffic away from drained replicas.
  std::size_t max_retries = 0;
  sim::Duration retry_backoff = 0.05;
  double retry_multiplier = 2.0;

  /// Service group name whose endpoint up/down events this client
  /// follows (empty = fixed endpoint set).
  std::string watch;

  [[nodiscard]] static ClientConfig from_json(const json::Value& config);
  [[nodiscard]] json::Value to_json() const;
};

class InferenceClientPayload final : public core::TaskPayload {
 public:
  explicit InferenceClientPayload(const core::TaskDescription& desc);

  void run(core::ExecutionContext& ctx, DoneFn done, FailFn fail) override;

 private:
  core::TaskDescription desc_;
};

}  // namespace ripple::ml
