#include "ripple/ml/install.hpp"

#include "ripple/ml/client.hpp"
#include "ripple/ml/inference_service.hpp"

namespace ripple::ml {

void install(core::Session& session) {
  session.executor().programs().register_factory(
      "inference", [](const core::ServiceDescription& desc) {
        return std::make_unique<InferenceProgram>(desc);
      });
  session.executor().payloads().register_factory(
      "inference_client", [](const core::TaskDescription& desc) {
        return std::make_unique<InferenceClientPayload>(desc);
      });
}

}  // namespace ripple::ml
