#pragma once

/// \file load_balancer.hpp
/// Client-side load balancing across service endpoints.
///
/// The paper uses "only a rudimentary load balancing" and lists dynamic
/// rerouting to less-used instances as future work; this module provides
/// both the rudimentary (round-robin, random) and the improved
/// (least-outstanding) policies so the ablation bench can quantify the
/// difference.

#include <memory>
#include <string>
#include <vector>

#include "ripple/common/random.hpp"

namespace ripple::ml {

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  /// Picks the endpoint for the next request.
  [[nodiscard]] virtual const std::string& pick() = 0;

  /// Signals that a request to `endpoint` completed (policies that track
  /// in-flight counts use this; others ignore it).
  virtual void on_complete(const std::string& endpoint) { (void)endpoint; }

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  [[nodiscard]] const std::vector<std::string>& endpoints() const noexcept {
    return endpoints_;
  }

 protected:
  explicit LoadBalancer(std::vector<std::string> endpoints);
  std::vector<std::string> endpoints_;
};

/// Cycles through endpoints in order (the paper's rudimentary policy).
class RoundRobinBalancer final : public LoadBalancer {
 public:
  explicit RoundRobinBalancer(std::vector<std::string> endpoints);
  [[nodiscard]] const std::string& pick() override;
  [[nodiscard]] const char* name() const noexcept override {
    return "round_robin";
  }

 private:
  std::size_t next_ = 0;
};

/// Uniform random endpoint choice.
class RandomBalancer final : public LoadBalancer {
 public:
  RandomBalancer(std::vector<std::string> endpoints, common::Rng rng);
  [[nodiscard]] const std::string& pick() override;
  [[nodiscard]] const char* name() const noexcept override {
    return "random";
  }

 private:
  common::Rng rng_;
};

/// Chooses the endpoint with the fewest requests in flight (ties break
/// round-robin). The paper's planned "dynamically rerouting requests to
/// less used service instances".
class LeastOutstandingBalancer final : public LoadBalancer {
 public:
  explicit LeastOutstandingBalancer(std::vector<std::string> endpoints);
  [[nodiscard]] const std::string& pick() override;
  void on_complete(const std::string& endpoint) override;
  [[nodiscard]] const char* name() const noexcept override {
    return "least_outstanding";
  }
  [[nodiscard]] std::size_t outstanding(const std::string& endpoint) const;

 private:
  std::vector<std::size_t> in_flight_;
  std::size_t tie_break_ = 0;
};

/// Factory: "round_robin" | "random" | "least_outstanding".
[[nodiscard]] std::unique_ptr<LoadBalancer> make_balancer(
    const std::string& policy, std::vector<std::string> endpoints,
    common::Rng rng);

}  // namespace ripple::ml
