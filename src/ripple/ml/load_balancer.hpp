#pragma once

/// \file load_balancer.hpp
/// Client-side load balancing across a *dynamic* set of service
/// endpoints.
///
/// The paper uses "only a rudimentary load balancing" and lists dynamic
/// rerouting to less-used instances as future work; this module provides
/// both the rudimentary (round-robin, random) and the improved
/// (least-outstanding) policies so the ablation bench can quantify the
/// difference. Endpoints may be added and removed while requests are in
/// flight — the autoscaler registers replicas as they come up and
/// deregisters them when they drain — so every policy supports
/// add_endpoint/remove_endpoint, and LeastOutstandingBalancer migrates
/// the in-flight counts of removed endpoints to a draining ledger (and
/// back, when an endpoint returns) instead of losing them.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ripple/common/random.hpp"

namespace ripple::ml {

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  /// Picks the endpoint for the next request. Throws Errc::invalid_state
  /// when every endpoint has been removed.
  [[nodiscard]] virtual const std::string& pick() = 0;

  /// Signals that a request to `endpoint` completed (policies that track
  /// in-flight counts use this; others ignore it). Safe to call for an
  /// endpoint that has since been removed.
  virtual void on_complete(const std::string& endpoint) { (void)endpoint; }

  /// Registers a new endpoint; returns false (no-op) if already
  /// present.
  bool add_endpoint(const std::string& endpoint);

  /// Deregisters an endpoint; returns false when unknown. In-flight
  /// requests to it may still complete (see on_complete).
  bool remove_endpoint(const std::string& endpoint);

  [[nodiscard]] bool has_endpoint(const std::string& endpoint) const;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  [[nodiscard]] const std::vector<std::string>& endpoints() const noexcept {
    return endpoints_;
  }

 protected:
  explicit LoadBalancer(std::vector<std::string> endpoints);

  [[nodiscard]] std::size_t index_of(const std::string& endpoint) const;

  /// Subclass bookkeeping hooks, called after the endpoint list changed.
  /// `index` is the appended slot (added) or the erased slot (removed).
  virtual void endpoint_added(std::size_t index) { (void)index; }
  virtual void endpoint_removed(std::size_t index,
                                const std::string& endpoint) {
    (void)index;
    (void)endpoint;
  }

  std::vector<std::string> endpoints_;
};

/// Cycles through endpoints in order (the paper's rudimentary policy).
class RoundRobinBalancer final : public LoadBalancer {
 public:
  explicit RoundRobinBalancer(std::vector<std::string> endpoints);
  [[nodiscard]] const std::string& pick() override;
  [[nodiscard]] const char* name() const noexcept override {
    return "round_robin";
  }

 private:
  void endpoint_removed(std::size_t index,
                        const std::string& endpoint) override;

  std::size_t next_ = 0;
};

/// Uniform random endpoint choice.
class RandomBalancer final : public LoadBalancer {
 public:
  RandomBalancer(std::vector<std::string> endpoints, common::Rng rng);
  [[nodiscard]] const std::string& pick() override;
  [[nodiscard]] const char* name() const noexcept override {
    return "random";
  }

 private:
  common::Rng rng_;
};

/// Chooses the endpoint with the fewest requests in flight (ties break
/// round-robin). The paper's planned "dynamically rerouting requests to
/// less used service instances".
class LeastOutstandingBalancer final : public LoadBalancer {
 public:
  explicit LeastOutstandingBalancer(std::vector<std::string> endpoints);
  [[nodiscard]] const std::string& pick() override;
  void on_complete(const std::string& endpoint) override;
  [[nodiscard]] const char* name() const noexcept override {
    return "least_outstanding";
  }

  /// In-flight count; also answers for removed-but-draining endpoints.
  [[nodiscard]] std::size_t outstanding(const std::string& endpoint) const;

  /// Requests still in flight to endpoints that have been removed.
  [[nodiscard]] std::size_t draining_total() const noexcept;

 private:
  void endpoint_added(std::size_t index) override;
  void endpoint_removed(std::size_t index,
                        const std::string& endpoint) override;

  std::vector<std::size_t> in_flight_;
  /// Removed endpoints with in-flight counts > 0: the migration ledger.
  /// Counts move back into in_flight_ if the endpoint is re-added.
  std::map<std::string, std::size_t> draining_;
  std::size_t tie_break_ = 0;
};

/// Factory: "round_robin" | "random" | "least_outstanding".
[[nodiscard]] std::unique_ptr<LoadBalancer> make_balancer(
    const std::string& policy, std::vector<std::string> endpoints,
    common::Rng rng);

}  // namespace ripple::ml
