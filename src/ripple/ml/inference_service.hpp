#pragma once

/// \file inference_service.hpp
/// The "inference" ServiceProgram: a model behind the service API.
///
/// This is the concrete Service Base Class subclass the paper describes
/// ("a new class, exposing methods for ML model handling via a
/// general-purpose API"). Configuration keys (ServiceDescription.config):
///   model            - ModelRegistry name (default "noop")
///   preloaded        - bool: skip the load phase (remote persistent)
///   max_concurrency  - int: server worker slots (default 1)
///   max_queue        - int: queue bound, 0 = unbounded
///   max_batch        - int: requests per batched inference (default 1)
///   batch_window     - double: seconds a partial batch waits to fill
///   continuous       - bool: vLLM-style continuous batching (admit at
///                      step boundaries, reply per sequence)
///   latency_window   - double: trailing seconds of request latencies
///                      kept for the SLO autoscaler (default 10)
///
/// RPC methods exposed: "infer", "stats" (plus the manager-bound
/// "health").

#include <memory>

#include "ripple/core/executor.hpp"
#include "ripple/ml/inference_server.hpp"

namespace ripple::ml {

class InferenceProgram final : public core::ServiceProgram {
 public:
  explicit InferenceProgram(const core::ServiceDescription& desc);

  void init(core::ExecutionContext& ctx, DoneFn done, FailFn fail) override;
  void bind(msg::RpcServer& server) override;
  [[nodiscard]] std::size_t outstanding() const override;
  void collect_window_latencies(sim::SimTime now,
                                std::vector<double>& out) const override;
  [[nodiscard]] json::Value stats() const override;

  /// The underlying server (valid after init).
  [[nodiscard]] InferenceServer* server() noexcept { return server_.get(); }

 private:
  core::ServiceDescription desc_;
  std::unique_ptr<InferenceServer> server_;
};

}  // namespace ripple::ml
