#include "ripple/ml/load_balancer.hpp"

#include <algorithm>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::ml {

LoadBalancer::LoadBalancer(std::vector<std::string> endpoints)
    : endpoints_(std::move(endpoints)) {
  ensure(!endpoints_.empty(), Errc::invalid_argument,
         "load balancer needs at least one endpoint");
}

RoundRobinBalancer::RoundRobinBalancer(std::vector<std::string> endpoints)
    : LoadBalancer(std::move(endpoints)) {}

const std::string& RoundRobinBalancer::pick() {
  const std::string& chosen = endpoints_[next_];
  next_ = (next_ + 1) % endpoints_.size();
  return chosen;
}

RandomBalancer::RandomBalancer(std::vector<std::string> endpoints,
                               common::Rng rng)
    : LoadBalancer(std::move(endpoints)), rng_(rng) {}

const std::string& RandomBalancer::pick() {
  const auto index = static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(endpoints_.size()) - 1));
  return endpoints_[index];
}

LeastOutstandingBalancer::LeastOutstandingBalancer(
    std::vector<std::string> endpoints)
    : LoadBalancer(std::move(endpoints)), in_flight_(endpoints_.size(), 0) {}

const std::string& LeastOutstandingBalancer::pick() {
  std::size_t best = 0;
  std::size_t best_load = in_flight_[0];
  // Rotate the starting index so equal-load endpoints share work.
  for (std::size_t step = 0; step < endpoints_.size(); ++step) {
    const std::size_t i = (tie_break_ + step) % endpoints_.size();
    if (step == 0 || in_flight_[i] < best_load) {
      best = i;
      best_load = in_flight_[i];
    }
  }
  tie_break_ = (tie_break_ + 1) % endpoints_.size();
  ++in_flight_[best];
  return endpoints_[best];
}

void LeastOutstandingBalancer::on_complete(const std::string& endpoint) {
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (endpoints_[i] == endpoint) {
      if (in_flight_[i] > 0) --in_flight_[i];
      return;
    }
  }
}

std::size_t LeastOutstandingBalancer::outstanding(
    const std::string& endpoint) const {
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (endpoints_[i] == endpoint) return in_flight_[i];
  }
  return 0;
}

std::unique_ptr<LoadBalancer> make_balancer(const std::string& policy,
                                            std::vector<std::string> endpoints,
                                            common::Rng rng) {
  if (policy == "round_robin") {
    return std::make_unique<RoundRobinBalancer>(std::move(endpoints));
  }
  if (policy == "random") {
    return std::make_unique<RandomBalancer>(std::move(endpoints), rng);
  }
  if (policy == "least_outstanding") {
    return std::make_unique<LeastOutstandingBalancer>(std::move(endpoints));
  }
  raise(Errc::not_found,
        strutil::cat("unknown load-balancing policy '", policy, "'"));
}

}  // namespace ripple::ml
