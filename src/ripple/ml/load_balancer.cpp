#include "ripple/ml/load_balancer.hpp"

#include <algorithm>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::ml {

LoadBalancer::LoadBalancer(std::vector<std::string> endpoints)
    : endpoints_(std::move(endpoints)) {
  ensure(!endpoints_.empty(), Errc::invalid_argument,
         "load balancer needs at least one endpoint");
}

std::size_t LoadBalancer::index_of(const std::string& endpoint) const {
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (endpoints_[i] == endpoint) return i;
  }
  return endpoints_.size();
}

bool LoadBalancer::has_endpoint(const std::string& endpoint) const {
  return index_of(endpoint) < endpoints_.size();
}

bool LoadBalancer::add_endpoint(const std::string& endpoint) {
  ensure(!endpoint.empty(), Errc::invalid_argument,
         "add_endpoint: empty endpoint");
  if (has_endpoint(endpoint)) return false;
  endpoints_.push_back(endpoint);
  endpoint_added(endpoints_.size() - 1);
  return true;
}

bool LoadBalancer::remove_endpoint(const std::string& endpoint) {
  const std::size_t index = index_of(endpoint);
  if (index >= endpoints_.size()) return false;
  endpoints_.erase(endpoints_.begin() +
                   static_cast<std::ptrdiff_t>(index));
  endpoint_removed(index, endpoint);
  return true;
}

RoundRobinBalancer::RoundRobinBalancer(std::vector<std::string> endpoints)
    : LoadBalancer(std::move(endpoints)) {}

const std::string& RoundRobinBalancer::pick() {
  ensure(!endpoints_.empty(), Errc::invalid_state,
         "round_robin pick: no endpoints");
  if (next_ >= endpoints_.size()) next_ = 0;
  const std::string& chosen = endpoints_[next_];
  next_ = (next_ + 1) % endpoints_.size();
  return chosen;
}

void RoundRobinBalancer::endpoint_removed(std::size_t index,
                                          const std::string&) {
  // Keep the cursor on the endpoint it was about to serve.
  if (index < next_) --next_;
  if (!endpoints_.empty()) next_ %= endpoints_.size();
}

RandomBalancer::RandomBalancer(std::vector<std::string> endpoints,
                               common::Rng rng)
    : LoadBalancer(std::move(endpoints)), rng_(rng) {}

const std::string& RandomBalancer::pick() {
  ensure(!endpoints_.empty(), Errc::invalid_state,
         "random pick: no endpoints");
  const auto index = static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(endpoints_.size()) - 1));
  return endpoints_[index];
}

LeastOutstandingBalancer::LeastOutstandingBalancer(
    std::vector<std::string> endpoints)
    : LoadBalancer(std::move(endpoints)), in_flight_(endpoints_.size(), 0) {}

const std::string& LeastOutstandingBalancer::pick() {
  ensure(!endpoints_.empty(), Errc::invalid_state,
         "least_outstanding pick: no endpoints");
  std::size_t best = 0;
  std::size_t best_load = in_flight_[0];
  // Rotate the starting index so equal-load endpoints share work.
  if (tie_break_ >= endpoints_.size()) tie_break_ = 0;
  for (std::size_t step = 0; step < endpoints_.size(); ++step) {
    const std::size_t i = (tie_break_ + step) % endpoints_.size();
    if (step == 0 || in_flight_[i] < best_load) {
      best = i;
      best_load = in_flight_[i];
    }
  }
  tie_break_ = (tie_break_ + 1) % endpoints_.size();
  ++in_flight_[best];
  return endpoints_[best];
}

void LeastOutstandingBalancer::on_complete(const std::string& endpoint) {
  const std::size_t index = index_of(endpoint);
  if (index < endpoints_.size()) {
    if (in_flight_[index] > 0) --in_flight_[index];
    return;
  }
  // A completion for a removed endpoint: settle it against the draining
  // ledger so not a single in-flight request is ever lost track of.
  const auto it = draining_.find(endpoint);
  if (it != draining_.end() && --it->second == 0) draining_.erase(it);
}

std::size_t LeastOutstandingBalancer::outstanding(
    const std::string& endpoint) const {
  const std::size_t index = index_of(endpoint);
  if (index < endpoints_.size()) return in_flight_[index];
  const auto it = draining_.find(endpoint);
  return it == draining_.end() ? 0 : it->second;
}

std::size_t LeastOutstandingBalancer::draining_total() const noexcept {
  std::size_t total = 0;
  for (const auto& [endpoint, count] : draining_) total += count;
  return total;
}

void LeastOutstandingBalancer::endpoint_added(std::size_t index) {
  // A returning endpoint resumes with the load it still carries.
  std::size_t carried = 0;
  const auto it = draining_.find(endpoints_[index]);
  if (it != draining_.end()) {
    carried = it->second;
    draining_.erase(it);
  }
  in_flight_.push_back(carried);
}

void LeastOutstandingBalancer::endpoint_removed(
    std::size_t index, const std::string& endpoint) {
  const std::size_t carried = in_flight_[index];
  in_flight_.erase(in_flight_.begin() +
                   static_cast<std::ptrdiff_t>(index));
  if (carried > 0) draining_[endpoint] += carried;
}

std::unique_ptr<LoadBalancer> make_balancer(const std::string& policy,
                                            std::vector<std::string> endpoints,
                                            common::Rng rng) {
  if (policy == "round_robin") {
    return std::make_unique<RoundRobinBalancer>(std::move(endpoints));
  }
  if (policy == "random") {
    return std::make_unique<RandomBalancer>(std::move(endpoints), rng);
  }
  if (policy == "least_outstanding") {
    return std::make_unique<LeastOutstandingBalancer>(std::move(endpoints));
  }
  raise(Errc::not_found,
        strutil::cat("unknown load-balancing policy '", policy, "'"));
}

}  // namespace ripple::ml
