#include "ripple/ml/client.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "ripple/common/error.hpp"
#include "ripple/common/statistics.hpp"
#include "ripple/common/strutil.hpp"
#include "ripple/ml/load_balancer.hpp"

namespace ripple::ml {

ClientConfig ClientConfig::from_json(const json::Value& config) {
  ClientConfig out;
  if (config.contains("endpoints")) {
    for (const auto& endpoint : config.at("endpoints").as_array()) {
      out.endpoints.push_back(endpoint.as_string());
    }
  }
  out.requests = static_cast<std::size_t>(
      config.get_or("requests", json::Value(16)).as_int());
  out.concurrency = static_cast<std::size_t>(
      config.get_or("concurrency", json::Value(1)).as_int());
  out.series = config.get_or("series", json::Value("requests")).as_string();
  out.balancer =
      config.get_or("balancer", json::Value("round_robin")).as_string();
  out.timeout = config.get_or("timeout", json::Value(0.0)).as_double();
  out.think_time =
      config.get_or("think_time", json::Value(0.0)).as_double();
  out.prompt_tokens =
      config.get_or("prompt_tokens", json::Value(64)).as_int();
  out.max_retries = static_cast<std::size_t>(
      config.get_or("max_retries", json::Value(0)).as_int());
  out.retry_backoff =
      config.get_or("retry_backoff", json::Value(0.05)).as_double();
  out.retry_multiplier =
      config.get_or("retry_multiplier", json::Value(2.0)).as_double();
  out.watch = config.get_or("watch", json::Value("")).as_string();
  return out;
}

json::Value ClientConfig::to_json() const {
  json::Value out = json::Value::object();
  json::Value eps = json::Value::array();
  for (const auto& endpoint : endpoints) eps.push_back(endpoint);
  out.set("endpoints", std::move(eps));
  out.set("requests", requests);
  out.set("concurrency", concurrency);
  out.set("series", series);
  out.set("balancer", balancer);
  out.set("timeout", timeout);
  out.set("think_time", think_time);
  out.set("prompt_tokens", prompt_tokens);
  out.set("max_retries", max_retries);
  out.set("retry_backoff", retry_backoff);
  out.set("retry_multiplier", retry_multiplier);
  out.set("watch", watch);
  return out;
}

InferenceClientPayload::InferenceClientPayload(
    const core::TaskDescription& desc)
    : desc_(desc) {}

namespace {

/// Book-keeps one client task's request stream; owns the RpcClient and
/// load balancer and keeps itself alive until all requests complete.
/// Failures (server rejects, vanished endpoints, timeouts) are retried
/// with bounded exponential backoff; each retry re-picks an endpoint,
/// so backpressure doubles as rerouting. With `watch` set, the balancer
/// endpoint set follows the ServiceManager's "endpoints" events.
class ClientRun : public std::enable_shared_from_this<ClientRun> {
 public:
  ClientRun(core::ExecutionContext& ctx, ClientConfig config,
            core::TaskPayload::DoneFn done, core::TaskPayload::FailFn fail)
      : ctx_(ctx),
        config_(std::move(config)),
        done_(std::move(done)),
        fail_(std::move(fail)),
        rpc_(ctx.router(), ctx.uid + ".cli", ctx.host),
        retry_rng_(ctx.rng.fork("retry")),
        balancer_(make_balancer(config_.balancer, config_.endpoints,
                                ctx.rng.fork("balancer"))) {}

  void start() {
    if (config_.requests == 0) {
      finish();
      return;
    }
    if (!config_.watch.empty()) {
      auto self = shared_from_this();
      subscription_ = ctx_.runtime->pubsub().subscribe(
          "endpoints",
          [self](const std::string&, const json::Value& event) {
            self->on_endpoint_event(event);
          });
      // Reconcile with the synchronous directory: endpoint transitions
      // between the configured snapshot and this subscription (task
      // launch takes real simulated time) would otherwise be invisible
      // for the task's whole lifetime — in both directions.
      reconcile_watch();
    }
    const std::size_t first_wave =
        std::min(config_.concurrency, config_.requests);
    for (std::size_t i = 0; i < first_wave; ++i) send_next();
  }

 private:
  void on_endpoint_event(const json::Value& event) {
    if (finished_) return;
    if (event.get_or("name", json::Value("")).as_string() != config_.watch) {
      return;
    }
    const std::string endpoint =
        event.get_or("endpoint", json::Value("")).as_string();
    if (endpoint.empty()) return;
    if (event.get_or("up", json::Value(false)).as_bool()) {
      deferred_down_.erase(endpoint);  // the endpoint came back
      if (balancer_->add_endpoint(endpoint)) ++endpoints_added_;
      flush_deferred_down();
    } else {
      mark_endpoint_down(endpoint);
    }
  }

  /// Evicts a dead endpoint — but never the last one: a drained pool
  /// keeps routing to the survivor (requests fail fast and the retry
  /// path backs off). A skipped removal is remembered and applied the
  /// moment a replacement comes up; leaving the dead endpoint in a
  /// least-outstanding rotation would be pathological, since its
  /// fast-failing requests keep its in-flight count at zero and make
  /// it the preferred pick.
  void mark_endpoint_down(const std::string& endpoint) {
    if (balancer_->endpoints().size() > 1) {
      if (balancer_->remove_endpoint(endpoint)) ++endpoints_removed_;
    } else if (balancer_->has_endpoint(endpoint)) {
      deferred_down_.insert(endpoint);
    }
  }

  void flush_deferred_down() {
    for (auto it = deferred_down_.begin();
         it != deferred_down_.end() && balancer_->endpoints().size() > 1;) {
      if (balancer_->remove_endpoint(*it)) ++endpoints_removed_;
      it = deferred_down_.erase(it);
    }
  }

  /// Re-syncs the balancer pool with the synchronous endpoint
  /// directory, in both directions. Called at start() and again before
  /// each retry attempt: the subscription keeps the pool current while
  /// the run is live, but a request sleeping through its backoff must
  /// not re-pick from drifted state — an endpoint whose removal the
  /// last-endpoint guard deferred stays preferred (zero in-flight)
  /// even after a replacement registered, and the retry would keep
  /// hammering the corpse until its budget drained.
  void reconcile_watch() {
    if (config_.watch.empty()) return;
    const std::vector<std::string> current =
        ctx_.runtime->endpoints_of(config_.watch);
    for (const std::string& endpoint : current) {
      deferred_down_.erase(endpoint);
      balancer_->add_endpoint(endpoint);
    }
    const std::vector<std::string> known = balancer_->endpoints();
    for (const std::string& endpoint : known) {
      if (std::find(current.begin(), current.end(), endpoint) ==
          current.end()) {
        mark_endpoint_down(endpoint);
      }
    }
    flush_deferred_down();
  }

  void send_next() {
    if (sent_ >= config_.requests) return;
    ++sent_;
    ++in_flight_;
    attempt(0);
  }

  void attempt(std::size_t tries) {
    const std::string target = balancer_->pick();
    json::Value args = json::Value::object();
    args.set("prompt_tokens", config_.prompt_tokens);
    args.set("client", ctx_.uid);
    auto self = shared_from_this();
    rpc_.call(
        target, "infer", std::move(args),
        [self, target, tries](msg::CallResult result) {
          self->on_result(target, tries, std::move(result));
        },
        config_.timeout);
  }

  void on_result(const std::string& target, std::size_t tries,
                 msg::CallResult result) {
    balancer_->on_complete(target);
    if (!result.ok && tries < config_.max_retries) {
      // Bounded exponential backoff before the next attempt; the
      // request slot stays occupied, which is what makes the client
      // stop hammering a saturated pool. Jitter (0.5x..1.5x, from the
      // task's seeded stream) decorrelates the retry storm — without
      // it, rejected cohorts re-arrive in lockstep and can starve each
      // other through every retry round.
      ++retried_;
      last_error_ = result.error;
      const sim::Duration delay =
          config_.retry_backoff *
          std::pow(config_.retry_multiplier, static_cast<double>(tries)) *
          retry_rng_.uniform(0.5, 1.5);
      auto self = shared_from_this();
      ctx_.loop().call_after(delay, [self, tries] {
        self->reconcile_watch();
        self->attempt(tries + 1);
      });
      return;
    }
    --in_flight_;
    if (result.ok) {
      ++ok_;
      const msg::RequestTiming timing = result.timing();
      ctx_.metrics().add_request(config_.series, timing);
      totals_.add(timing.total);
    } else {
      ++failed_;
      last_error_ = result.error;
    }
    if (sent_ < config_.requests) {
      if (config_.think_time > 0.0) {
        auto self = shared_from_this();
        ctx_.loop().call_after(config_.think_time,
                               [self] { self->send_next(); });
      } else {
        send_next();
      }
    } else if (in_flight_ == 0) {
      finish();
    }
  }

  void finish() {
    if (finished_) return;
    finished_ = true;
    if (subscription_ != 0) {
      ctx_.runtime->pubsub().unsubscribe(subscription_);
      subscription_ = 0;
    }
    if (ok_ == 0 && failed_ > 0) {
      fail_(strutil::cat("all ", failed_, " requests failed: ",
                         last_error_));
      return;
    }
    json::Value result = json::Value::object();
    result.set("sent", sent_);
    result.set("ok", ok_);
    result.set("failed", failed_);
    result.set("retried", retried_);
    if (endpoints_added_ + endpoints_removed_ > 0) {
      result.set("endpoints_added", endpoints_added_);
      result.set("endpoints_removed", endpoints_removed_);
    }
    if (!totals_.empty()) {
      result.set("response_time", totals_.to_json());
    }
    done_(std::move(result));
  }

  core::ExecutionContext& ctx_;
  ClientConfig config_;
  core::TaskPayload::DoneFn done_;
  core::TaskPayload::FailFn fail_;
  msg::RpcClient rpc_;
  common::Rng retry_rng_;
  std::unique_ptr<LoadBalancer> balancer_;
  msg::PubSub::SubscriptionId subscription_ = 0;
  /// Down events skipped by the last-endpoint guard, applied once a
  /// replacement endpoint arrives.
  std::set<std::string> deferred_down_;
  std::size_t sent_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t ok_ = 0;
  std::size_t failed_ = 0;
  std::size_t retried_ = 0;
  std::size_t endpoints_added_ = 0;
  std::size_t endpoints_removed_ = 0;
  std::string last_error_;
  bool finished_ = false;
  common::Summary totals_;
};

}  // namespace

void InferenceClientPayload::run(core::ExecutionContext& ctx, DoneFn done,
                                 FailFn fail) {
  // The execution context carries the description's payload config; a
  // wrapper payload may have rewritten the description (e.g. to inject
  // resolved endpoints), in which case the description wins.
  const json::Value& effective =
      desc_.payload.contains("endpoints") ? desc_.payload : ctx.config;
  ClientConfig config = ClientConfig::from_json(effective);
  if (config.endpoints.empty()) {
    fail("inference client has no endpoints configured");
    return;
  }
  auto run_state = std::make_shared<ClientRun>(
      ctx, std::move(config), std::move(done), std::move(fail));
  run_state->start();
}

}  // namespace ripple::ml
