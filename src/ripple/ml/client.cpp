#include "ripple/ml/client.hpp"

#include <memory>

#include "ripple/common/error.hpp"
#include "ripple/common/statistics.hpp"
#include "ripple/common/strutil.hpp"
#include "ripple/ml/load_balancer.hpp"

namespace ripple::ml {

ClientConfig ClientConfig::from_json(const json::Value& config) {
  ClientConfig out;
  if (config.contains("endpoints")) {
    for (const auto& endpoint : config.at("endpoints").as_array()) {
      out.endpoints.push_back(endpoint.as_string());
    }
  }
  out.requests = static_cast<std::size_t>(
      config.get_or("requests", json::Value(16)).as_int());
  out.concurrency = static_cast<std::size_t>(
      config.get_or("concurrency", json::Value(1)).as_int());
  out.series = config.get_or("series", json::Value("requests")).as_string();
  out.balancer =
      config.get_or("balancer", json::Value("round_robin")).as_string();
  out.timeout = config.get_or("timeout", json::Value(0.0)).as_double();
  out.think_time =
      config.get_or("think_time", json::Value(0.0)).as_double();
  out.prompt_tokens =
      config.get_or("prompt_tokens", json::Value(64)).as_int();
  return out;
}

json::Value ClientConfig::to_json() const {
  json::Value out = json::Value::object();
  json::Value eps = json::Value::array();
  for (const auto& endpoint : endpoints) eps.push_back(endpoint);
  out.set("endpoints", std::move(eps));
  out.set("requests", requests);
  out.set("concurrency", concurrency);
  out.set("series", series);
  out.set("balancer", balancer);
  out.set("timeout", timeout);
  out.set("think_time", think_time);
  out.set("prompt_tokens", prompt_tokens);
  return out;
}

InferenceClientPayload::InferenceClientPayload(
    const core::TaskDescription& desc)
    : desc_(desc) {}

namespace {

/// Book-keeps one client task's request stream; owns the RpcClient and
/// load balancer and keeps itself alive until all requests complete.
class ClientRun : public std::enable_shared_from_this<ClientRun> {
 public:
  ClientRun(core::ExecutionContext& ctx, ClientConfig config,
            core::TaskPayload::DoneFn done, core::TaskPayload::FailFn fail)
      : ctx_(ctx),
        config_(std::move(config)),
        done_(std::move(done)),
        fail_(std::move(fail)),
        rpc_(ctx.router(), ctx.uid + ".cli", ctx.host),
        balancer_(make_balancer(config_.balancer, config_.endpoints,
                                ctx.rng.fork("balancer"))) {}

  void start() {
    if (config_.requests == 0) {
      finish();
      return;
    }
    const std::size_t first_wave =
        std::min(config_.concurrency, config_.requests);
    for (std::size_t i = 0; i < first_wave; ++i) send_next();
  }

 private:
  void send_next() {
    if (sent_ >= config_.requests) return;
    ++sent_;
    ++in_flight_;
    const std::string target = balancer_->pick();
    json::Value args = json::Value::object();
    args.set("prompt_tokens", config_.prompt_tokens);
    args.set("client", ctx_.uid);
    auto self = shared_from_this();
    rpc_.call(
        target, "infer", std::move(args),
        [self, target](msg::CallResult result) {
          self->on_result(target, std::move(result));
        },
        config_.timeout);
  }

  void on_result(const std::string& target, msg::CallResult result) {
    --in_flight_;
    balancer_->on_complete(target);
    if (result.ok) {
      ++ok_;
      const msg::RequestTiming timing = result.timing();
      ctx_.metrics().add_request(config_.series, timing);
      totals_.add(timing.total);
    } else {
      ++failed_;
      last_error_ = result.error;
    }
    if (sent_ < config_.requests) {
      if (config_.think_time > 0.0) {
        auto self = shared_from_this();
        ctx_.loop().call_after(config_.think_time,
                               [self] { self->send_next(); });
      } else {
        send_next();
      }
    } else if (in_flight_ == 0) {
      finish();
    }
  }

  void finish() {
    if (finished_) return;
    finished_ = true;
    if (ok_ == 0 && failed_ > 0) {
      fail_(strutil::cat("all ", failed_, " requests failed: ",
                         last_error_));
      return;
    }
    json::Value result = json::Value::object();
    result.set("sent", sent_);
    result.set("ok", ok_);
    result.set("failed", failed_);
    if (!totals_.empty()) {
      result.set("response_time", totals_.to_json());
    }
    done_(std::move(result));
  }

  core::ExecutionContext& ctx_;
  ClientConfig config_;
  core::TaskPayload::DoneFn done_;
  core::TaskPayload::FailFn fail_;
  msg::RpcClient rpc_;
  std::unique_ptr<LoadBalancer> balancer_;
  std::size_t sent_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t ok_ = 0;
  std::size_t failed_ = 0;
  std::string last_error_;
  bool finished_ = false;
  common::Summary totals_;
};

}  // namespace

void InferenceClientPayload::run(core::ExecutionContext& ctx, DoneFn done,
                                 FailFn fail) {
  // The execution context carries the description's payload config; a
  // wrapper payload may have rewritten the description (e.g. to inject
  // resolved endpoints), in which case the description wins.
  const json::Value& effective =
      desc_.payload.contains("endpoints") ? desc_.payload : ctx.config;
  ClientConfig config = ClientConfig::from_json(effective);
  if (config.endpoints.empty()) {
    fail("inference client has no endpoints configured");
    return;
  }
  auto run_state = std::make_shared<ClientRun>(
      ctx, std::move(config), std::move(done), std::move(fail));
  run_state->start();
}

}  // namespace ripple::ml
