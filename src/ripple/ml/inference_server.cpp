#include "ripple/ml/inference_server.hpp"

#include <algorithm>

#include "ripple/common/error.hpp"

namespace ripple::ml {

InferenceServer::InferenceServer(sim::EventLoop& loop, common::Rng rng,
                                 ModelSpec model, ServerConfig config)
    : loop_(loop), rng_(rng), model_(std::move(model)), config_(config) {
  ensure(config_.max_concurrency > 0, Errc::invalid_argument,
         "server needs max_concurrency >= 1");
}

void InferenceServer::handle(std::shared_ptr<msg::Responder> responder) {
  ensure(responder != nullptr, Errc::invalid_argument,
         "handle: null responder");
  if (config_.max_queue != 0 && queue_.size() >= config_.max_queue) {
    ++rejected_;
    responder->fail("server queue full");
    return;
  }
  queue_.push_back(std::move(responder));
  peak_queue_ = std::max(peak_queue_, queue_.size());
  pump();
}

void InferenceServer::pump() {
  while (busy_ < config_.max_concurrency && !queue_.empty()) {
    std::shared_ptr<msg::Responder> responder = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;

    const sim::Duration parse_time = model_.parse.sample(rng_);
    loop_.call_after(parse_time, [this, responder] {
      responder->begin_compute();
      const sim::Duration inference_time =
          model_.sample_inference(rng_);
      loop_.call_after(inference_time, [this, responder, inference_time] {
        responder->end_compute();
        inference_times_.add(inference_time);

        const sim::Duration serialize_time = model_.serialize.sample(rng_);
        loop_.call_after(serialize_time, [this, responder,
                                          inference_time] {
          json::Value body = json::Value::object();
          body.set("model", model_.name);
          body.set("inference_s", inference_time);
          body.set("ok", true);
          responder->reply(std::move(body));
          ++served_;
          --busy_;
          pump();
        });
      });
    });
  }
}

json::Value InferenceServer::stats() const {
  json::Value out = json::Value::object();
  out.set("model", model_.name);
  out.set("served", served_);
  out.set("rejected", rejected_);
  out.set("queued", queue_.size());
  out.set("busy", busy_);
  out.set("peak_queue", peak_queue_);
  out.set("max_concurrency", config_.max_concurrency);
  if (!inference_times_.empty()) {
    out.set("inference", inference_times_.to_json());
  }
  return out;
}

}  // namespace ripple::ml
