#include "ripple/ml/inference_server.hpp"

#include <algorithm>

#include "ripple/common/error.hpp"

namespace ripple::ml {

InferenceServer::InferenceServer(sim::EventLoop& loop, common::Rng rng,
                                 ModelSpec model, ServerConfig config)
    : loop_(loop), rng_(rng), model_(std::move(model)), config_(config) {
  ensure(config_.max_concurrency > 0, Errc::invalid_argument,
         "server needs max_concurrency >= 1");
  ensure(config_.max_batch > 0, Errc::invalid_argument,
         "server needs max_batch >= 1");
  ensure(config_.batch_window >= 0.0, Errc::invalid_argument,
         "server needs batch_window >= 0");
}

InferenceServer::~InferenceServer() {
  if (window_timer_.valid()) {
    loop_.cancel(window_timer_);
    window_timer_ = {};
  }
  // alive_ expires here; in-flight batch callbacks see it and bail.
  // Their responders are dropped unreplied, which is exactly what a
  // crashed server looks like to clients (timeout / unreachable).
}

void InferenceServer::handle(std::shared_ptr<msg::Responder> responder) {
  ensure(responder != nullptr, Errc::invalid_argument,
         "handle: null responder");
  if (config_.max_queue != 0 && queue_.size() >= config_.max_queue) {
    ++rejected_;
    responder->fail("server queue full");
    return;
  }
  queue_.push_back(std::move(responder));
  peak_queue_ = std::max(peak_queue_, queue_.size());
  pump();
}

void InferenceServer::pump() {
  while (busy_workers_ < config_.max_concurrency && !queue_.empty()) {
    if (queue_.size() < config_.max_batch && config_.batch_window > 0.0 &&
        !window_expired_) {
      break;  // partial batch: accumulate under the window below
    }
    dispatch(std::min(queue_.size(), config_.max_batch));
  }
  // A partial batch accumulates under an open window regardless of
  // worker availability: the clock starts when the batch starts
  // waiting, not when a worker happens to free up. When the window
  // runs out with every worker busy, the expiry sticks — the first
  // freeing worker takes the batch immediately instead of re-windowing
  // requests that already waited out their window.
  if (!queue_.empty() && queue_.size() < config_.max_batch &&
      config_.batch_window > 0.0 && !window_expired_ &&
      !window_timer_.valid()) {
    window_timer_ = loop_.call_after(
        config_.batch_window,
        [this, alive = std::weak_ptr<char>(alive_)] {
          if (alive.expired()) return;
          window_timer_ = {};
          if (queue_.empty()) return;
          if (busy_workers_ < config_.max_concurrency) {
            dispatch(std::min(queue_.size(), config_.max_batch));
            pump();
          } else {
            window_expired_ = true;
          }
        });
  }
}

void InferenceServer::dispatch(std::size_t batch_size) {
  // The window belongs to the requests being taken now; the next
  // accumulation opens a fresh one.
  window_expired_ = false;
  if (window_timer_.valid()) {
    loop_.cancel(window_timer_);
    window_timer_ = {};
  }
  auto batch = std::make_shared<
      std::vector<std::shared_ptr<msg::Responder>>>();
  batch->reserve(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    batch->push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  ++busy_workers_;
  busy_requests_ += batch_size;
  ++batches_;
  batch_sizes_.add(static_cast<double>(batch_size));
  if (batch_trace_.size() < kBatchTraceCap) {
    batch_trace_.push_back(static_cast<std::uint32_t>(batch_size));
  }
  batch_trace_hash_ ^= static_cast<std::uint64_t>(batch_size);
  batch_trace_hash_ *= 1099511628211ULL;

  // Requests are parsed one after another before the batch launches.
  sim::Duration parse_time = 0.0;
  for (std::size_t i = 0; i < batch_size; ++i) {
    parse_time += model_.parse.sample(rng_);
  }
  const std::weak_ptr<char> alive = alive_;
  loop_.call_after(parse_time, [this, batch, alive] {
    if (alive.expired()) return;
    std::vector<double> tokens;
    tokens.reserve(batch->size());
    for (const auto& responder : *batch) {
      responder->begin_compute();
      tokens.push_back(std::max(0.0, model_.tokens_out.sample(rng_)));
    }
    const sim::Duration inference_time = model_.batch_duration(tokens);
    loop_.call_after(inference_time, [this, batch, alive,
                                      inference_time] {
      if (alive.expired()) return;
      inference_times_.add(inference_time);
      sim::Duration serialize_time = 0.0;
      for (const auto& responder : *batch) {
        responder->end_compute();
        serialize_time += model_.serialize.sample(rng_);
      }
      loop_.call_after(serialize_time, [this, batch, alive,
                                        inference_time] {
        if (alive.expired()) return;
        for (auto& responder : *batch) {
          json::Value body = json::Value::object();
          body.set("model", model_.name);
          body.set("inference_s", inference_time);
          body.set("batch", batch->size());
          body.set("ok", true);
          responder->reply(std::move(body));
          ++served_;
        }
        busy_requests_ -= batch->size();
        --busy_workers_;
        pump();
      });
    });
  });
}

json::Value InferenceServer::stats() const {
  json::Value out = json::Value::object();
  out.set("model", model_.name);
  out.set("served", served_);
  out.set("rejected", rejected_);
  out.set("queued", queue_.size());
  out.set("busy", busy_requests_);
  out.set("peak_queue", peak_queue_);
  out.set("max_concurrency", config_.max_concurrency);
  out.set("max_batch", config_.max_batch);
  out.set("batch_window", config_.batch_window);
  out.set("batches", batches_);
  if (!batch_sizes_.empty()) {
    out.set("batch_size_mean", batch_sizes_.mean());
    out.set("batch_size_max", batch_sizes_.max());
  }
  if (!inference_times_.empty()) {
    out.set("inference", inference_times_.to_json());
  }
  return out;
}

}  // namespace ripple::ml
