#include "ripple/ml/inference_server.hpp"

#include <algorithm>
#include <limits>

#include "ripple/common/error.hpp"

namespace ripple::ml {

namespace {
/// Residual solo-work below which a sequence counts as finished: the
/// decode timer targets the minimum remaining work exactly, but the
/// round trip through dt = remaining * factor and back leaves up to a
/// few ulps. Sequences within this of each other finish in the same
/// decode boundary (in admission order), deterministically.
constexpr double kDecodeEpsilon = 1e-9;
}  // namespace

InferenceServer::InferenceServer(sim::EventLoop& loop, common::Rng rng,
                                 ModelSpec model, ServerConfig config)
    : loop_(loop),
      rng_(rng),
      model_(std::move(model)),
      config_(config),
      latency_window_(config.latency_window) {
  ensure(config_.max_concurrency > 0, Errc::invalid_argument,
         "server needs max_concurrency >= 1");
  ensure(config_.max_batch > 0, Errc::invalid_argument,
         "server needs max_batch >= 1");
  ensure(config_.batch_window >= 0.0, Errc::invalid_argument,
         "server needs batch_window >= 0");
}

InferenceServer::~InferenceServer() {
  if (window_timer_.valid()) {
    loop_.cancel(window_timer_);
    window_timer_ = {};
  }
  if (decode_timer_.valid()) {
    loop_.cancel(decode_timer_);
    decode_timer_ = {};
  }
  // alive_ expires here; in-flight batch callbacks see it and bail.
  // Their responders are dropped unreplied — already-replied sequences
  // of a partially completed continuous batch are never re-replied —
  // which is exactly what a crashed server looks like to clients
  // (timeout / unreachable).
}

void InferenceServer::handle(std::shared_ptr<msg::Responder> responder) {
  ensure(responder != nullptr, Errc::invalid_argument,
         "handle: null responder");
  if (config_.max_queue != 0 && queue_.size() >= config_.max_queue) {
    ++rejected_;
    if (counters_ != nullptr) counters_->add("ml.rejected");
    responder->fail("server queue full");
    return;
  }
  queue_.push_back(Queued{std::move(responder), loop_.now()});
  peak_queue_ = std::max(peak_queue_, queue_.size());
  pump();
}

void InferenceServer::note_batch(std::size_t batch_size) {
  batch_sizes_.add(static_cast<double>(batch_size));
  if (batch_trace_.size() < kBatchTraceCap) {
    batch_trace_.push_back(static_cast<std::uint32_t>(batch_size));
  }
  batch_trace_hash_ ^= static_cast<std::uint64_t>(batch_size);
  batch_trace_hash_ *= 1099511628211ULL;
}

void InferenceServer::record_latency(sim::SimTime arrived) {
  const double latency = loop_.now() - arrived;
  request_latencies_.add(latency);
  latency_window_.add(loop_.now(), latency);
  if (counters_ != nullptr) counters_->add("ml.served");
}

void InferenceServer::pump() {
  if (config_.continuous) {
    admit();
    return;
  }
  while (busy_workers_ < config_.max_concurrency && !queue_.empty()) {
    if (queue_.size() < config_.max_batch && config_.batch_window > 0.0 &&
        !window_expired_) {
      break;  // partial batch: accumulate under the window below
    }
    dispatch(std::min(queue_.size(), config_.max_batch));
  }
  // A partial batch accumulates under an open window regardless of
  // worker availability: the clock starts when the batch starts
  // waiting, not when a worker happens to free up. When the window
  // runs out with every worker busy, the expiry sticks — the first
  // freeing worker takes the batch immediately instead of re-windowing
  // requests that already waited out their window.
  if (!queue_.empty() && queue_.size() < config_.max_batch &&
      config_.batch_window > 0.0 && !window_expired_ &&
      !window_timer_.valid()) {
    window_timer_ = loop_.call_after(
        config_.batch_window,
        [this, alive = std::weak_ptr<char>(alive_)] {
          if (alive.expired()) return;
          window_timer_ = {};
          if (queue_.empty()) return;
          if (busy_workers_ < config_.max_concurrency) {
            dispatch(std::min(queue_.size(), config_.max_batch));
            pump();
          } else {
            window_expired_ = true;
          }
        });
  }
}

void InferenceServer::dispatch(std::size_t batch_size) {
  // The window belongs to the requests being taken now; the next
  // accumulation opens a fresh one.
  window_expired_ = false;
  if (window_timer_.valid()) {
    loop_.cancel(window_timer_);
    window_timer_ = {};
  }
  auto batch = std::make_shared<std::vector<Queued>>();
  batch->reserve(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    batch->push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  ++busy_workers_;
  busy_requests_ += batch_size;
  ++batches_;
  note_batch(batch_size);
  metrics::SpanId trace = 0;
  if (tracer_ != nullptr && tracer_->enabled()) {
    trace = tracer_->begin("batch", "ml", trace_entity_, loop_.now(), 0,
                           {{"size", std::to_string(batch_size)}});
  }
  if (counters_ != nullptr) {
    counters_->add("ml.batches");
    counters_->set_value("ml.batch_fill", static_cast<double>(batch_size));
  }

  // Requests are parsed one after another before the batch launches.
  sim::Duration parse_time = 0.0;
  for (std::size_t i = 0; i < batch_size; ++i) {
    parse_time += model_.parse.sample(rng_);
  }
  const std::weak_ptr<char> alive = alive_;
  loop_.call_after(parse_time, [this, batch, alive, trace] {
    if (alive.expired()) return;
    std::vector<double> tokens;
    tokens.reserve(batch->size());
    for (const auto& request : *batch) {
      request.responder->begin_compute();
      tokens.push_back(std::max(0.0, model_.tokens_out.sample(rng_)));
    }
    const sim::Duration inference_time = model_.batch_duration(tokens);
    loop_.call_after(inference_time, [this, batch, alive, trace,
                                      inference_time] {
      if (alive.expired()) return;
      inference_times_.add(inference_time);
      sim::Duration serialize_time = 0.0;
      for (const auto& request : *batch) {
        request.responder->end_compute();
        serialize_time += model_.serialize.sample(rng_);
      }
      loop_.call_after(serialize_time, [this, batch, alive, trace,
                                        inference_time] {
        if (alive.expired()) return;
        for (auto& request : *batch) {
          json::Value body = json::Value::object();
          body.set("model", model_.name);
          body.set("inference_s", inference_time);
          body.set("batch", batch->size());
          body.set("ok", true);
          request.responder->reply(std::move(body));
          ++served_;
          record_latency(request.arrived);
        }
        busy_requests_ -= batch->size();
        --busy_workers_;
        if (tracer_ != nullptr) tracer_->end(trace, loop_.now());
        pump();
      });
    });
  });
}

// --- continuous engine -----------------------------------------------------

void InferenceServer::admit() {
  // Admitted-but-parsing requests hold their batch slot (parsing_), so
  // the running batch can never overshoot max_batch no matter how many
  // parses are in flight at once.
  while (!queue_.empty() &&
         running_.size() + parsing_ < config_.max_batch) {
    Queued request = std::move(queue_.front());
    queue_.pop_front();
    ++parsing_;
    ++busy_requests_;
    const sim::Duration parse_time = model_.parse.sample(rng_);
    loop_.call_after(
        parse_time, [this, alive = std::weak_ptr<char>(alive_),
                     request = std::move(request)]() mutable {
          if (alive.expired()) return;
          --parsing_;
          join(std::move(request));
        });
  }
}

void InferenceServer::join(Queued request) {
  // A composition change is a step boundary: everyone's progress is
  // settled at the old decode rate before the batch grows.
  settle();
  request.responder->begin_compute();
  const double tokens = std::max(0.0, model_.tokens_out.sample(rng_));
  Sequence sequence;
  sequence.id = next_sequence_++;
  sequence.responder = std::move(request.responder);
  sequence.remaining = model_.sequence_work(tokens);
  sequence.arrived = request.arrived;
  sequence.started = loop_.now();
  if (tracer_ != nullptr && tracer_->enabled()) {
    sequence.trace =
        tracer_->begin("sequence", "ml", trace_entity_, loop_.now(), 0,
                       {{"id", std::to_string(sequence.id)}});
  }
  running_.push_back(std::move(sequence));
  ++batches_;
  note_batch(running_.size());
  if (counters_ != nullptr) {
    counters_->add("ml.batches");
    counters_->set_value("ml.batch_fill",
                         static_cast<double>(running_.size()));
  }
  reschedule();
}

void InferenceServer::settle() {
  const sim::SimTime now = loop_.now();
  if (!running_.empty()) {
    const double elapsed = now - segment_start_;
    if (elapsed > 0.0) {
      const double rate = 1.0 / model_.step_factor(running_.size());
      for (auto& sequence : running_) {
        sequence.remaining -= elapsed * rate;
      }
    }
  }
  segment_start_ = now;
}

void InferenceServer::reschedule() {
  if (decode_timer_.valid()) {
    loop_.cancel(decode_timer_);
    decode_timer_ = {};
  }
  if (running_.empty()) return;
  double next = std::numeric_limits<double>::infinity();
  for (const auto& sequence : running_) {
    next = std::min(next, std::max(0.0, sequence.remaining));
  }
  const double dt = next * model_.step_factor(running_.size());
  decode_timer_ = loop_.call_after(
      dt, [this, alive = std::weak_ptr<char>(alive_)] {
        if (alive.expired()) return;
        decode_timer_ = {};
        on_decode_boundary();
      });
}

void InferenceServer::on_decode_boundary() {
  settle();
  // Retire every sequence that ran out of work, in admission order —
  // ties (identical remaining work) complete together, oldest first,
  // which keeps the completion order a pure function of the seed.
  std::vector<Sequence> finished;
  auto it = running_.begin();
  while (it != running_.end()) {
    if (it->remaining <= kDecodeEpsilon) {
      finished.push_back(std::move(*it));
      it = running_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& sequence : finished) finish_sequence(std::move(sequence));
  // The freed slots take queued requests at this same step boundary.
  admit();
  reschedule();
}

void InferenceServer::finish_sequence(Sequence sequence) {
  sequence.responder->end_compute();
  if (tracer_ != nullptr) tracer_->end(sequence.trace, loop_.now());
  const sim::Duration decode_time = loop_.now() - sequence.started;
  inference_times_.add(decode_time);
  if (completion_order_.size() < kBatchTraceCap) {
    completion_order_.push_back(sequence.id);
  }
  completion_hash_ ^= sequence.id;
  completion_hash_ *= 1099511628211ULL;
  const sim::Duration serialize_time = model_.serialize.sample(rng_);
  loop_.call_after(
      serialize_time,
      [this, alive = std::weak_ptr<char>(alive_),
       responder = std::move(sequence.responder), id = sequence.id,
       arrived = sequence.arrived, decode_time]() mutable {
        if (alive.expired()) return;
        json::Value body = json::Value::object();
        body.set("model", model_.name);
        body.set("inference_s", decode_time);
        body.set("sequence", static_cast<std::int64_t>(id));
        body.set("ok", true);
        responder->reply(std::move(body));
        ++served_;
        --busy_requests_;
        record_latency(arrived);
      });
}

json::Value InferenceServer::stats() const {
  json::Value out = json::Value::object();
  out.set("model", model_.name);
  out.set("served", served_);
  out.set("rejected", rejected_);
  out.set("queued", queue_.size());
  out.set("busy", busy_requests_);
  out.set("peak_queue", peak_queue_);
  out.set("max_concurrency", config_.max_concurrency);
  out.set("max_batch", config_.max_batch);
  out.set("batch_window", config_.batch_window);
  out.set("continuous", config_.continuous);
  out.set("batches", batches_);
  if (config_.continuous) {
    out.set("running_sequences", running_.size());
  }
  if (!batch_sizes_.empty()) {
    out.set("batch_size_mean", batch_sizes_.mean());
    out.set("batch_size_max", batch_sizes_.max());
  }
  if (!inference_times_.empty()) {
    out.set("inference", inference_times_.to_json());
  }
  if (latency_window_.count(loop_.now()) > 0) {
    out.set("window_p95", latency_window_.quantile(loop_.now(), 0.95));
  }
  return out;
}

}  // namespace ripple::ml
