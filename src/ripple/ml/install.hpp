#pragma once

/// \file install.hpp
/// Registers the ML capabilities with a core Session:
///   * service program "inference"      (InferenceProgram)
///   * task payload   "inference_client" (InferenceClientPayload)
///
/// Keeping registration explicit preserves the layering the paper's
/// architecture prescribes: the runtime is agnostic to the capabilities
/// a service exposes; ML is one plug-in family among potentially many.

#include "ripple/core/session.hpp"

namespace ripple::ml {

void install(core::Session& session);

}  // namespace ripple::ml
