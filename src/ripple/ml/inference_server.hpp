#pragma once

/// \file inference_server.hpp
/// The inference request pipeline (Ollama role), now with adaptive
/// micro-batching.
///
/// The paper states: "Currently, services are single-threaded, and, as
/// such, they only handle one request at a time, queuing further
/// incoming requests." The default configuration (one worker, batch of
/// one) implements exactly that queue; `max_batch`/`batch_window` turn
/// on the batched serving mode the paper names as future work: an idle
/// worker takes up to `max_batch` queued requests at once, and when
/// fewer are queued it holds a `batch_window`-long window open so
/// near-simultaneous requests coalesce. A full batch always dispatches
/// immediately (the "adaptive" part: no window penalty at saturation).
///
/// Request life: arrive -> FIFO queue -> [batch] parse -> one batched
/// inference (ModelSpec::batch_duration) -> serialize -> reply. The
/// Responder's compute stamps bracket only the inference, so queue +
/// batch-window wait + parse + serialize land in the paper's `service`
/// component.

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "ripple/common/random.hpp"
#include "ripple/common/statistics.hpp"
#include "ripple/ml/model.hpp"
#include "ripple/msg/rpc.hpp"
#include "ripple/sim/event_loop.hpp"

namespace ripple::ml {

struct ServerConfig {
  /// Concurrent batches processed (1 == the paper's current design).
  std::size_t max_concurrency = 1;

  /// Queue bound; requests beyond it are rejected with an error reply.
  /// 0 means unbounded (the paper's services queue without bound).
  std::size_t max_queue = 0;

  /// Requests coalesced into one inference (1 == unbatched baseline).
  std::size_t max_batch = 1;

  /// How long an idle worker waits for a partial batch to fill before
  /// dispatching what is queued. 0 dispatches partial batches
  /// immediately. Ignored when max_batch == 1.
  sim::Duration batch_window = 0.0;
};

class InferenceServer {
 public:
  InferenceServer(sim::EventLoop& loop, common::Rng rng, ModelSpec model,
                  ServerConfig config = {});

  /// Cancels the batch window and expires the liveness token: pending
  /// pipeline callbacks (parse/inference/serialize of in-flight
  /// batches) become no-ops instead of touching a dead server — a
  /// failed/killed service can be torn down with work still queued.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Accepts an RPC "infer" request (called from the bound method).
  void handle(std::shared_ptr<msg::Responder> responder);

  /// Requests queued or executing.
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return queue_.size() + busy_requests_;
  }
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }
  /// Requests currently inside dispatched batches.
  [[nodiscard]] std::size_t busy() const noexcept { return busy_requests_; }
  /// Worker slots currently processing a batch.
  [[nodiscard]] std::size_t busy_workers() const noexcept {
    return busy_workers_;
  }
  [[nodiscard]] std::uint64_t served() const noexcept { return served_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] std::uint64_t batches() const noexcept { return batches_; }
  [[nodiscard]] std::size_t peak_queue() const noexcept {
    return peak_queue_;
  }
  [[nodiscard]] const ModelSpec& model() const noexcept { return model_; }

  /// Observed per-batch inference durations.
  [[nodiscard]] const common::Summary& inference_times() const noexcept {
    return inference_times_;
  }

  /// Dispatched batch sizes, in dispatch order, capped at
  /// kBatchTraceCap entries so long-running servers don't grow without
  /// bound. Same-seed runs must produce bit-identical traces (the
  /// serving determinism tests diff this directly).
  [[nodiscard]] const std::vector<std::uint32_t>& batch_trace()
      const noexcept {
    return batch_trace_;
  }

  /// FNV-1a over *every* dispatched batch size (not capped): the cheap
  /// full-lifetime determinism fingerprint.
  [[nodiscard]] std::uint64_t batch_trace_hash() const noexcept {
    return batch_trace_hash_;
  }

  static constexpr std::size_t kBatchTraceCap = 1 << 16;

  [[nodiscard]] json::Value stats() const;

 private:
  void pump();
  void dispatch(std::size_t batch_size);

  sim::EventLoop& loop_;
  common::Rng rng_;
  ModelSpec model_;
  ServerConfig config_;
  std::deque<std::shared_ptr<msg::Responder>> queue_;
  sim::EventLoop::TimerHandle window_timer_;
  /// The open batch window ran out while every worker was busy; the
  /// waiting partial batch dispatches to the first freeing worker
  /// instead of being re-windowed (it already paid its window once).
  bool window_expired_ = false;
  /// Liveness token captured (weakly) by every scheduled callback.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  std::size_t busy_workers_ = 0;
  std::size_t busy_requests_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t batches_ = 0;
  std::size_t peak_queue_ = 0;
  common::Summary inference_times_;
  common::Summary batch_sizes_;
  std::vector<std::uint32_t> batch_trace_;
  std::uint64_t batch_trace_hash_ = 14695981039346656037ULL;
};

}  // namespace ripple::ml
