#pragma once

/// \file inference_server.hpp
/// The inference request pipeline (Ollama role): adaptive micro-batching
/// and vLLM-style continuous batching.
///
/// The paper states: "Currently, services are single-threaded, and, as
/// such, they only handle one request at a time, queuing further
/// incoming requests." The default configuration (one worker, batch of
/// one) implements exactly that queue; `max_batch`/`batch_window` turn
/// on the batched serving mode the paper names as future work: an idle
/// worker takes up to `max_batch` queued requests at once, and when
/// fewer are queued it holds a `batch_window`-long window open so
/// near-simultaneous requests coalesce. A full batch always dispatches
/// immediately (the "adaptive" part: no window penalty at saturation).
///
/// `continuous` replaces fixed micro-batches with ONE running batch of
/// per-sequence decode states: each admitted request is a sequence with
/// `ModelSpec::sequence_work(tokens)` seconds of solo decode work left,
/// and every sequence drains at rate 1/step_factor(N) while N sequences
/// share the decode loop (the same `batch_cost_slope` cost model the
/// fixed path charges batch-wide). Queued requests are admitted at step
/// boundaries — whenever the batch composition changes — up to
/// `max_batch`, and each request replies the moment *its* sequence
/// finishes instead of at batch end. That is what lifts tail latency at
/// saturation: a short sequence no longer waits for the longest one in
/// its batch. Admission order, decode-segment arithmetic and completion
/// order are all pure functions of the seed, so same-seed runs produce
/// bit-identical batch traces and completion orders.
///
/// Request life (fixed): arrive -> FIFO queue -> [batch] parse -> one
/// batched inference (ModelSpec::batch_duration) -> serialize -> reply.
/// Request life (continuous): arrive -> FIFO queue -> admit at a step
/// boundary -> parse -> decode as a sequence of the running batch ->
/// sequence finishes -> serialize -> reply. Either way the Responder's
/// compute stamps bracket only the decode, so queue wait + parse +
/// serialize land in the paper's `service` component.
///
/// Every reply also records an arrival->reply latency sample into a
/// sliding `latency_window` (metrics::WindowQuantile): the per-request
/// latency stream the SLO autoscaler polls through the ServiceManager.

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "ripple/common/random.hpp"
#include "ripple/common/statistics.hpp"
#include "ripple/metrics/counters.hpp"
#include "ripple/metrics/tracer.hpp"
#include "ripple/metrics/window_quantile.hpp"
#include "ripple/ml/model.hpp"
#include "ripple/msg/rpc.hpp"
#include "ripple/sim/event_loop.hpp"

namespace ripple::ml {

struct ServerConfig {
  /// Concurrent batches processed (1 == the paper's current design).
  /// Ignored in continuous mode: there is one shared decode loop.
  std::size_t max_concurrency = 1;

  /// Queue bound; requests beyond it are rejected with an error reply.
  /// 0 means unbounded (the paper's services queue without bound).
  std::size_t max_queue = 0;

  /// Requests coalesced into one inference (1 == unbatched baseline).
  /// In continuous mode: the running batch's sequence cap.
  std::size_t max_batch = 1;

  /// How long an idle worker waits for a partial batch to fill before
  /// dispatching what is queued. 0 dispatches partial batches
  /// immediately. Ignored when max_batch == 1 and in continuous mode
  /// (admission there is immediate at step boundaries).
  sim::Duration batch_window = 0.0;

  /// vLLM-style continuous batching (see the file comment).
  bool continuous = false;

  /// Trailing window of per-request latencies kept for SLO queries.
  sim::Duration latency_window = 10.0;
};

class InferenceServer {
 public:
  InferenceServer(sim::EventLoop& loop, common::Rng rng, ModelSpec model,
                  ServerConfig config = {});

  /// Cancels the batch-window and decode timers and expires the
  /// liveness token: pending pipeline callbacks (parse/inference/
  /// serialize of in-flight batches, decode boundaries and per-sequence
  /// replies of a running continuous batch) become no-ops instead of
  /// touching a dead server — a failed/killed service can be torn down
  /// with work still queued, and sequences that already replied are
  /// never replied to twice.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Wires the runtime's tracer/counters in (either may be null).
  /// `entity` names this server in the span log — the owning service
  /// uid, so replicas stay distinguishable. When tracing is enabled,
  /// fixed-mode batches and continuous-mode sequences become spans and
  /// the serving counters ("ml.batches", "ml.served", ...) tick, with
  /// "ml.batch_fill" tracking the latest dispatched/running batch size.
  void set_trace(metrics::Tracer* tracer, metrics::Counters* counters,
                 std::string entity) {
    tracer_ = tracer;
    counters_ = counters;
    trace_entity_ = std::move(entity);
  }

  /// Accepts an RPC "infer" request (called from the bound method).
  void handle(std::shared_ptr<msg::Responder> responder);

  /// Requests queued or executing.
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return queue_.size() + busy_requests_;
  }
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }
  /// Requests currently admitted (parsing, decoding or serializing).
  [[nodiscard]] std::size_t busy() const noexcept { return busy_requests_; }
  /// Worker slots currently processing a batch (fixed mode); in
  /// continuous mode, 1 while the decode loop has sequences.
  [[nodiscard]] std::size_t busy_workers() const noexcept {
    if (config_.continuous) return running_.empty() ? 0 : 1;
    return busy_workers_;
  }
  /// Sequences currently inside the running continuous batch.
  [[nodiscard]] std::size_t running_sequences() const noexcept {
    return running_.size();
  }
  [[nodiscard]] std::uint64_t served() const noexcept { return served_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  /// Fixed mode: batches dispatched. Continuous mode: sequences
  /// admitted into the running batch.
  [[nodiscard]] std::uint64_t batches() const noexcept { return batches_; }
  [[nodiscard]] std::size_t peak_queue() const noexcept {
    return peak_queue_;
  }
  [[nodiscard]] const ModelSpec& model() const noexcept { return model_; }

  /// Observed inference durations: per dispatched batch (fixed mode) or
  /// per completed sequence (continuous mode).
  [[nodiscard]] const common::Summary& inference_times() const noexcept {
    return inference_times_;
  }

  /// Batch-size trace, capped at kBatchTraceCap entries so long-running
  /// servers don't grow without bound. Fixed mode: dispatched batch
  /// sizes in dispatch order. Continuous mode: the running batch size
  /// after each admission, in admission order. Same-seed runs must
  /// produce bit-identical traces (the serving determinism tests diff
  /// this directly).
  [[nodiscard]] const std::vector<std::uint32_t>& batch_trace()
      const noexcept {
    return batch_trace_;
  }

  /// FNV-1a over *every* batch-trace entry (not capped): the cheap
  /// full-lifetime determinism fingerprint.
  [[nodiscard]] std::uint64_t batch_trace_hash() const noexcept {
    return batch_trace_hash_;
  }

  /// Continuous mode: sequence ids (admission-ordered, 0-based) in the
  /// order their decode finished, capped at kBatchTraceCap.
  [[nodiscard]] const std::vector<std::uint64_t>& completion_order()
      const noexcept {
    return completion_order_;
  }

  /// FNV-1a over *every* completed sequence id, uncapped.
  [[nodiscard]] std::uint64_t completion_hash() const noexcept {
    return completion_hash_;
  }

  /// Full-lifetime arrival->reply latencies (every served request).
  [[nodiscard]] const common::Summary& request_latencies() const noexcept {
    return request_latencies_;
  }

  /// Sliding-window latencies for SLO queries (config.latency_window).
  [[nodiscard]] const metrics::WindowQuantile& latency_window()
      const noexcept {
    return latency_window_;
  }

  static constexpr std::size_t kBatchTraceCap = 1 << 16;

  [[nodiscard]] json::Value stats() const;

 private:
  /// A request waiting in the FIFO queue (arrival stamped for the
  /// latency stream).
  struct Queued {
    std::shared_ptr<msg::Responder> responder;
    sim::SimTime arrived = 0.0;
  };

  /// One sequence of the running continuous batch. `remaining` is solo
  /// decode work (seconds at batch size 1) still to drain.
  struct Sequence {
    std::uint64_t id = 0;
    std::shared_ptr<msg::Responder> responder;
    double remaining = 0.0;
    sim::SimTime arrived = 0.0;
    sim::SimTime started = 0.0;  ///< decode join time (inference stamp)
    metrics::SpanId trace = 0;   ///< open decode span, 0 when untraced
  };

  void pump();
  void dispatch(std::size_t batch_size);

  // --- continuous engine -------------------------------------------------
  /// Admits queued requests into free batch slots (each pays its parse
  /// cost before joining the decode loop).
  void admit();
  /// Adds a parsed request to the running batch at a step boundary.
  void join(Queued request);
  /// Advances every running sequence's progress to now at the decode
  /// rate of the segment that just ended.
  void settle();
  /// (Re)arms the decode timer for the earliest sequence completion.
  void reschedule();
  /// Decode timer fired: retire finished sequences, admit, re-arm.
  void on_decode_boundary();
  void finish_sequence(Sequence sequence);

  void note_batch(std::size_t batch_size);
  void record_latency(sim::SimTime arrived);

  sim::EventLoop& loop_;
  common::Rng rng_;
  ModelSpec model_;
  ServerConfig config_;
  metrics::Tracer* tracer_ = nullptr;
  metrics::Counters* counters_ = nullptr;
  std::string trace_entity_ = "inference";
  std::deque<Queued> queue_;
  sim::EventLoop::TimerHandle window_timer_;
  /// The open batch window ran out while every worker was busy; the
  /// waiting partial batch dispatches to the first freeing worker
  /// instead of being re-windowed (it already paid its window once).
  bool window_expired_ = false;
  /// Liveness token captured (weakly) by every scheduled callback.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  std::size_t busy_workers_ = 0;
  std::size_t busy_requests_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t batches_ = 0;
  std::size_t peak_queue_ = 0;

  /// Continuous engine state: the running batch (admission order), the
  /// count of admitted-but-still-parsing requests (they hold batch
  /// slots so admission can never overshoot max_batch), the timer armed
  /// for the next earliest sequence completion, and the wall time the
  /// current constant-composition decode segment began.
  std::vector<Sequence> running_;
  std::size_t parsing_ = 0;
  sim::EventLoop::TimerHandle decode_timer_;
  sim::SimTime segment_start_ = 0.0;
  std::uint64_t next_sequence_ = 0;

  common::Summary inference_times_;
  common::Summary batch_sizes_;
  common::Summary request_latencies_;
  metrics::WindowQuantile latency_window_;
  std::vector<std::uint32_t> batch_trace_;
  std::uint64_t batch_trace_hash_ = 14695981039346656037ULL;
  std::vector<std::uint64_t> completion_order_;
  std::uint64_t completion_hash_ = 14695981039346656037ULL;
};

}  // namespace ripple::ml
