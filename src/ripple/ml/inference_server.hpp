#pragma once

/// \file inference_server.hpp
/// The single-threaded inference request pipeline (Ollama role).
///
/// The paper states: "Currently, services are single-threaded, and, as
/// such, they only handle one request at a time, queuing further
/// incoming requests." InferenceServer implements exactly that queue
/// (with the worker count as a parameter so the ablation bench can
/// explore the paper's planned multi-worker future work).
///
/// Request life: arrive -> FIFO queue -> parse -> inference -> serialize
/// -> reply. The Responder's compute stamps bracket only the inference,
/// so queue + parse + serialize land in the paper's `service` component.

#include <cstdint>
#include <deque>
#include <memory>

#include "ripple/common/random.hpp"
#include "ripple/common/statistics.hpp"
#include "ripple/ml/model.hpp"
#include "ripple/msg/rpc.hpp"
#include "ripple/sim/event_loop.hpp"

namespace ripple::ml {

struct ServerConfig {
  /// Concurrent requests processed (1 == the paper's current design).
  std::size_t max_concurrency = 1;

  /// Queue bound; requests beyond it are rejected with an error reply.
  /// 0 means unbounded (the paper's services queue without bound).
  std::size_t max_queue = 0;
};

class InferenceServer {
 public:
  InferenceServer(sim::EventLoop& loop, common::Rng rng, ModelSpec model,
                  ServerConfig config = {});

  /// Accepts an RPC "infer" request (called from the bound method).
  void handle(std::shared_ptr<msg::Responder> responder);

  /// Requests queued or executing.
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return queue_.size() + busy_;
  }
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] std::size_t busy() const noexcept { return busy_; }
  [[nodiscard]] std::uint64_t served() const noexcept { return served_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] std::size_t peak_queue() const noexcept {
    return peak_queue_;
  }
  [[nodiscard]] const ModelSpec& model() const noexcept { return model_; }

  /// Observed per-request inference durations.
  [[nodiscard]] const common::Summary& inference_times() const noexcept {
    return inference_times_;
  }

  [[nodiscard]] json::Value stats() const;

 private:
  void pump();

  sim::EventLoop& loop_;
  common::Rng rng_;
  ModelSpec model_;
  ServerConfig config_;
  std::deque<std::shared_ptr<msg::Responder>> queue_;
  std::size_t busy_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t rejected_ = 0;
  std::size_t peak_queue_ = 0;
  common::Summary inference_times_;
};

}  // namespace ripple::ml
