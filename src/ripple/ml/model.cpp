#include "ripple/ml/model.hpp"

#include <algorithm>
#include <cmath>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::ml {

sim::Duration ModelSpec::sample_inference(common::Rng& rng) const {
  const double tokens = std::max(0.0, tokens_out.sample(rng));
  return inference_floor_s + tokens * per_token_s;
}

sim::Duration ModelSpec::sample_init(common::Rng& rng,
                                     std::size_t concurrent_loads,
                                     double fs_coeff,
                                     std::size_t fs_threshold) const {
  double duration = init.sample(rng);
  if (fs_coeff > 0.0 && concurrent_loads > fs_threshold) {
    const double excess =
        static_cast<double>(concurrent_loads - fs_threshold);
    duration *= 1.0 + fs_coeff * excess;
  }
  return duration;
}

double ModelSpec::mean_inference() const {
  return inference_floor_s + tokens_out.mean() * per_token_s;
}

double ModelSpec::step_factor(std::size_t batch_size) const {
  if (batch_size <= 1) return 1.0;
  return 1.0 + batch_cost_slope * static_cast<double>(batch_size - 1);
}

double ModelSpec::sequence_work(double tokens) const {
  return inference_floor_s + std::max(0.0, tokens) * per_token_s;
}

sim::Duration ModelSpec::batch_duration(
    const std::vector<double>& tokens) const {
  if (tokens.empty()) return 0.0;
  double max_tokens = 0.0;
  for (const double t : tokens) max_tokens = std::max(max_tokens, t);
  return inference_floor_s +
         max_tokens * per_token_s * step_factor(tokens.size());
}

double ModelSpec::mean_batch_duration(std::size_t batch_size) const {
  if (batch_size == 0) return 0.0;
  return inference_floor_s +
         tokens_out.mean() * per_token_s * step_factor(batch_size);
}

ModelSpec noop_model() {
  ModelSpec m;
  m.name = "noop";
  // The NOOP "model" replies immediately (paper section IV-C); only a
  // tiny parse/serialize cost remains, which is what makes the
  // `service` component visible but small in Figs. 4-5.
  m.init = common::Distribution::constant(0.05);
  m.parse = common::Distribution::lognormal(18e-6, 0.25, 2e-6);
  m.serialize = common::Distribution::lognormal(8e-6, 0.25, 1e-6);
  m.tokens_out = common::Distribution::constant(0.0);
  m.per_token_s = 0.0;
  m.inference_floor_s = 1e-6;  // executing `noop` and forming the reply
  m.batch_cost_slope = 0.0;    // nothing to batch
  return m;
}

ModelSpec llama_8b_model() {
  ModelSpec m;
  m.name = "llama-8b";
  m.params_b = 8.0;
  m.mem_gb = 16.0;
  // Loading ~16 GB of weights from the shared FS plus runtime warm-up:
  // tens of seconds, dominating bootstrap (Fig. 3 `init`).
  m.init = common::Distribution::lognormal(32.0, 0.10, 12.0);
  m.parse = common::Distribution::lognormal(250e-6, 0.30, 20e-6);
  m.serialize = common::Distribution::lognormal(120e-6, 0.30, 10e-6);
  // ~120-token answers at ~35 ms/token on an A100-class GPU: seconds
  // per inference, which is why IT dominates RT in Fig. 6.
  m.tokens_out = common::Distribution::lognormal(120.0, 0.35, 8.0);
  m.per_token_s = 0.035;
  m.inference_floor_s = 0.12;
  m.batch_cost_slope = 0.10;  // A100-class GPUs batch decode well
  return m;
}

ModelSpec llama_70b_model() {
  ModelSpec m;
  m.name = "llama-70b";
  m.params_b = 70.0;
  m.mem_gb = 140.0;
  m.init = common::Distribution::lognormal(210.0, 0.12, 90.0);
  m.parse = common::Distribution::lognormal(300e-6, 0.30, 20e-6);
  m.serialize = common::Distribution::lognormal(150e-6, 0.30, 10e-6);
  m.tokens_out = common::Distribution::lognormal(140.0, 0.35, 8.0);
  m.per_token_s = 0.22;
  m.inference_floor_s = 0.5;
  m.batch_cost_slope = 0.18;  // memory-bound: batching pays less
  return m;
}

ModelSpec mistral_7b_model() {
  ModelSpec m;
  m.name = "mistral-7b";
  m.params_b = 7.0;
  m.mem_gb = 14.0;
  m.init = common::Distribution::lognormal(28.0, 0.10, 10.0);
  m.parse = common::Distribution::lognormal(230e-6, 0.30, 20e-6);
  m.serialize = common::Distribution::lognormal(110e-6, 0.30, 10e-6);
  m.tokens_out = common::Distribution::lognormal(110.0, 0.35, 8.0);
  m.per_token_s = 0.031;
  m.inference_floor_s = 0.11;
  m.batch_cost_slope = 0.10;
  return m;
}

ModelSpec vit_base_model() {
  ModelSpec m;
  m.name = "vit-base";
  m.params_b = 0.086;
  m.mem_gb = 2.0;
  m.init = common::Distribution::lognormal(6.0, 0.15, 2.0);
  m.parse = common::Distribution::lognormal(150e-6, 0.30, 10e-6);
  m.serialize = common::Distribution::lognormal(60e-6, 0.30, 5e-6);
  // Image classification: fixed-cost forward pass, no token generation.
  m.tokens_out = common::Distribution::constant(1.0);
  m.per_token_s = 0.0;
  m.inference_floor_s = 0.018;
  m.batch_cost_slope = 0.05;  // fixed-cost forward passes batch near-perfectly
  return m;
}

ModelRegistry::ModelRegistry() {
  add(noop_model());
  add(llama_8b_model());
  add(llama_70b_model());
  add(mistral_7b_model());
  add(vit_base_model());
}

void ModelRegistry::add(ModelSpec spec) {
  ensure(!spec.name.empty(), Errc::invalid_argument,
         "model spec needs a name");
  for (auto& existing : specs_) {
    if (existing.name == spec.name) {
      existing = std::move(spec);
      return;
    }
  }
  specs_.push_back(std::move(spec));
}

bool ModelRegistry::has(const std::string& name) const {
  return std::any_of(specs_.begin(), specs_.end(),
                     [&](const ModelSpec& m) { return m.name == name; });
}

const ModelSpec& ModelRegistry::get(const std::string& name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return spec;
  }
  raise(Errc::not_found, strutil::cat("unknown model '", name, "'"));
}

std::vector<std::string> ModelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& spec : specs_) out.push_back(spec.name);
  return out;
}

ModelRegistry& ModelRegistry::global() {
  static ModelRegistry instance;
  return instance;
}

}  // namespace ripple::ml
