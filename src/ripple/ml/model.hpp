#pragma once

/// \file model.hpp
/// ML model cost specifications (the Ollama/llama-8b substitution).
///
/// The paper deliberately treats models as opaque capabilities behind a
/// service API; what the runtime observes is (a) how long a model takes
/// to load (Fig. 3 `init`), (b) how long a request takes to parse
/// (part of the `service` component) and (c) how long inference takes
/// (Fig. 6 `inference`). ModelSpec captures those three cost models;
/// the built-in registry provides `noop` (Experiment 2) and `llama-8b`
/// (Experiments 1 and 3) plus a few plausible alternatives used by the
/// use-case examples.

#include <cstddef>
#include <string>
#include <vector>

#include "ripple/common/random.hpp"
#include "ripple/sim/event_loop.hpp"

namespace ripple::ml {

struct ModelSpec {
  std::string name = "noop";
  double params_b = 0.0;   ///< parameter count, billions
  double mem_gb = 0.0;     ///< GPU memory footprint

  /// Load + initialization time (cold start).
  common::Distribution init = common::Distribution::constant(0.0);

  /// Request deserialization/parse cost (service-side).
  common::Distribution parse = common::Distribution::constant(20e-6);

  /// Reply serialization cost (service-side).
  common::Distribution serialize = common::Distribution::constant(10e-6);

  /// Generated tokens per request (LLM-style generation).
  common::Distribution tokens_out = common::Distribution::constant(0.0);

  /// Seconds per generated token.
  double per_token_s = 0.0;

  /// Fixed floor per inference (kernel launch, pre/post processing).
  double inference_floor_s = 0.0;

  /// Marginal slowdown of a decode step per extra sequence in a batch:
  /// a batch of N runs its steps at (1 + batch_cost_slope * (N - 1))
  /// times the single-sequence step cost. 0 models perfect batching;
  /// large values model memory-bound models that barely batch. The
  /// fixed floor and the shared decode loop are amortized across the
  /// whole batch either way, which is where batched serving wins.
  double batch_cost_slope = 0.15;

  /// Samples one inference duration.
  [[nodiscard]] sim::Duration sample_inference(common::Rng& rng) const;

  /// Decode-step slowdown at the given batch size: every sequence in a
  /// batch of N progresses at 1/step_factor(N) of its solo rate. This
  /// is the single source of the batch_cost_slope model — fixed
  /// micro-batches charge it over the whole batch duration, continuous
  /// batching charges it per decode segment as sequences join/leave.
  [[nodiscard]] double step_factor(std::size_t batch_size) const;

  /// Solo decode work of one sequence (seconds at batch size 1):
  /// inference_floor_s + tokens * per_token_s. The continuous-batching
  /// engine drains this at rate 1/step_factor(current batch size).
  [[nodiscard]] double sequence_work(double tokens) const;

  /// Cost of one batched inference over requests with the given sampled
  /// token counts: the batch runs until its longest sequence finishes,
  /// every step slowed by batch_cost_slope per extra sequence.
  [[nodiscard]] sim::Duration batch_duration(
      const std::vector<double>& tokens) const;

  /// Analytic batch duration at mean token count (autoscaler/doc aid).
  [[nodiscard]] double mean_batch_duration(std::size_t batch_size) const;

  /// Samples a model load duration under `concurrent_loads` concurrent
  /// loaders on a shared filesystem (coeff/threshold from the platform
  /// profile; see ServiceManager::contention_config).
  [[nodiscard]] sim::Duration sample_init(common::Rng& rng,
                                          std::size_t concurrent_loads,
                                          double fs_coeff,
                                          std::size_t fs_threshold) const;

  /// Mean inference duration (analytic).
  [[nodiscard]] double mean_inference() const;
};

/// Name -> ModelSpec registry with the built-ins pre-registered:
/// "noop", "llama-8b", "llama-70b", "mistral-7b", "vit-base".
class ModelRegistry {
 public:
  ModelRegistry();

  void add(ModelSpec spec);
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] const ModelSpec& get(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Process-wide registry instance.
  static ModelRegistry& global();

 private:
  std::vector<ModelSpec> specs_;
};

/// Built-in spec constructors (also reachable via the registry).
[[nodiscard]] ModelSpec noop_model();
[[nodiscard]] ModelSpec llama_8b_model();
[[nodiscard]] ModelSpec llama_70b_model();
[[nodiscard]] ModelSpec mistral_7b_model();
[[nodiscard]] ModelSpec vit_base_model();

}  // namespace ripple::ml
