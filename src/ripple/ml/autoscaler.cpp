#include "ripple/ml/autoscaler.hpp"

#include <algorithm>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::ml {

Autoscaler::Autoscaler(core::Session& session, core::Pilot& pilot,
                       core::ServiceDescription replica,
                       AutoscalerConfig config)
    : session_(session),
      pilot_(pilot),
      replica_(std::move(replica)),
      config_(config),
      log_(session.runtime().make_logger(
          strutil::cat("autoscaler.", replica_.name))) {
  ensure(config_.min_replicas >= 1, Errc::invalid_argument,
         "autoscaler needs min_replicas >= 1");
  ensure(config_.max_replicas >= config_.min_replicas,
         Errc::invalid_argument,
         "autoscaler needs max_replicas >= min_replicas");
  ensure(config_.poll_interval > 0.0, Errc::invalid_argument,
         "autoscaler needs poll_interval > 0");
  ensure(config_.scale_up_outstanding > config_.scale_down_outstanding,
         Errc::invalid_argument,
         "autoscaler thresholds must satisfy up > down");
  if (config_.target_p95 > 0.0) {
    ensure(config_.headroom_fraction > 0.0 &&
               config_.headroom_fraction < 1.0,
           Errc::invalid_argument,
           "SLO autoscaler needs headroom_fraction in (0, 1)");
    ensure(config_.down_sustain >= 1, Errc::invalid_argument,
           "SLO autoscaler needs down_sustain >= 1");
  }
}

Autoscaler::~Autoscaler() {
  // Replicas (if any) outlive the autoscaler and must be stopped
  // through the ServiceManager; the poll timer must not.
  if (poll_timer_.valid()) {
    session_.loop().cancel(poll_timer_);
    poll_timer_ = {};
  }
}

void Autoscaler::start(std::function<void(bool)> on_ready) {
  ensure(!started_, Errc::invalid_state, "autoscaler already started");
  started_ = true;
  std::vector<core::ServiceDescription> descs(config_.min_replicas,
                                              replica_);
  std::vector<std::string> uids =
      session_.services().submit_all(pilot_, std::move(descs));
  replicas_.insert(replicas_.end(), uids.begin(), uids.end());
  session_.services().when_ready(
      uids, [this, alive = std::weak_ptr<char>(alive_),
             on_ready = std::move(on_ready)](bool ok) {
        // The autoscaler may be destroyed while the initial replicas
        // bootstrap; its callbacks die with it.
        if (alive.expired()) return;
        // Poll regardless of the bootstrap outcome: the repair path in
        // poll() is what rebuilds a pool whose replicas all failed.
        if (!stopping_) schedule_poll();
        if (on_ready) on_ready(ok);
      });
}

void Autoscaler::stop(std::function<void()> on_stopped) {
  stopping_ = true;
  if (poll_timer_.valid()) {
    session_.loop().cancel(poll_timer_);
    poll_timer_ = {};
  }
  std::vector<std::string> to_stop;
  for (const auto& uid : replicas_) {
    if (session_.services().exists(uid) &&
        !core::is_terminal(session_.services().get(uid).state())) {
      to_stop.push_back(uid);
    }
  }
  if (to_stop.empty()) {
    if (on_stopped) session_.loop().post(std::move(on_stopped));
    return;
  }
  auto remaining = std::make_shared<std::size_t>(to_stop.size());
  auto shared_callback =
      std::make_shared<std::function<void()>>(std::move(on_stopped));
  for (const auto& uid : to_stop) {
    session_.services().stop(uid, [remaining, shared_callback] {
      if (--(*remaining) == 0 && *shared_callback) (*shared_callback)();
    });
  }
}

std::vector<std::string> Autoscaler::endpoints() const {
  std::vector<std::string> out;
  for (const auto& uid : replicas_) {
    if (!session_.services().exists(uid)) continue;
    const core::Service& service = session_.services().get(uid);
    if (service.state() == core::ServiceState::running) {
      out.push_back(service.endpoint());
    }
  }
  return out;
}

std::size_t Autoscaler::active_replicas() const {
  // The group name is unique to this autoscaler, so the
  // ServiceManager's name-filtered aggregate is exactly our replicas.
  return session_.services().count_active(replica_.name);
}

std::size_t Autoscaler::running_replicas() const {
  std::size_t n = 0;
  for (const auto& uid : replicas_) {
    if (session_.services().exists(uid) &&
        session_.services().get(uid).state() ==
            core::ServiceState::running) {
      ++n;
    }
  }
  return n;
}

void Autoscaler::schedule_poll() {
  if (stopping_) return;
  poll_timer_ = session_.loop().call_after(config_.poll_interval, [this] {
    poll_timer_ = {};
    poll();
  });
}

void Autoscaler::prune_terminal_replicas() {
  // Terminal uids are dead weight: endpoints()/running_replicas()/
  // scale_down_victim() scan replicas_ every tick, so a pool that
  // repeatedly crash-repairs would otherwise degrade O(history).
  replicas_.erase(
      std::remove_if(replicas_.begin(), replicas_.end(),
                     [this](const std::string& uid) {
                       return !session_.services().exists(uid) ||
                              core::is_terminal(
                                  session_.services().get(uid).state());
                     }),
      replicas_.end());
}

void Autoscaler::poll() {
  if (stopping_) return;
  prune_terminal_replicas();
  const std::size_t running = running_replicas();
  const std::size_t active = active_replicas();
  if (running == 0) {
    if (active == 0 &&
        session_.now() - last_action_ >= config_.cooldown) {
      // Every replica reached a terminal state (liveness failures,
      // crashes): without repair the group would idle at zero forever
      // while clients burn retries against a dead pool.
      repair_pool();
    }
    // Otherwise the pool is still bootstrapping: judge again next tick
    // rather than piling more replicas onto a cold pool.
    schedule_poll();
    return;
  }
  if (config_.target_p95 > 0.0) {
    poll_slo(running, active);
    schedule_poll();
    return;
  }
  // The group's queue-depth signal comes from the ServiceManager's
  // name-filtered aggregate (the replica name identifies the group, so
  // it must not be shared with unrelated services).
  const std::size_t outstanding =
      session_.services().total_outstanding(replica_.name);
  const double per_replica =
      static_cast<double>(outstanding) / static_cast<double>(running);
  const bool cooled =
      session_.now() - last_action_ >= config_.cooldown;
  if (cooled && per_replica >= config_.scale_up_outstanding &&
      active < config_.max_replicas) {
    scale_up(outstanding);
  } else if (cooled && per_replica <= config_.scale_down_outstanding &&
             running > config_.min_replicas && active == running) {
    // `active == running` keeps the pool stable while a replica boots.
    scale_down(outstanding);
  }
  schedule_poll();
}

double Autoscaler::window_p95() const {
  return session_.services().window_latency_quantile(replica_.name, 0.95);
}

void Autoscaler::poll_slo(std::size_t running, std::size_t active) {
  const double p95 = window_p95();
  const std::size_t outstanding =
      session_.services().total_outstanding(replica_.name);
  const bool cooled =
      session_.now() - last_action_ >= config_.cooldown;
  if (p95 > config_.target_p95) {
    // SLO violated: any headroom streak is over, add capacity. Scaling
    // up repeats every cooled poll while the violation lasts — even
    // though the window still holds pre-scale-up samples — because
    // under-reacting to a breached SLO costs more than overshooting
    // toward max_replicas; the cooldown paces the ramp and the
    // sustained-headroom path sheds any excess once the window clears.
    headroom_polls_ = 0;
    if (cooled && active < config_.max_replicas) {
      scale_up(outstanding, p95);
    }
    return;
  }
  if (p95 < 0.0 && outstanding > 0) {
    // No completed request inside the window, yet work is in flight: a
    // saturated pool whose requests all outlive the window looks
    // exactly like an idle one to the latency signal. Hold — shedding
    // capacity here would deepen the very overload that emptied the
    // window.
    headroom_polls_ = 0;
    return;
  }
  if (p95 < 0.0 ||
      p95 <= config_.headroom_fraction * config_.target_p95) {
    // Sustained headroom (an empty window is an idle group): only a
    // full streak of quiet polls sheds a replica. A pool in flux (a
    // replica still booting) does not accrue the streak — the window
    // does not yet reflect the new capacity, and shedding the moment a
    // bootstrap completes is exactly the flapping hysteresis exists to
    // prevent.
    if (active != running) {
      headroom_polls_ = 0;
      return;
    }
    ++headroom_polls_;
    if (headroom_polls_ >= config_.down_sustain && cooled &&
        running > config_.min_replicas && active == running) {
      scale_down(outstanding, p95);
      headroom_polls_ = 0;
    }
    return;
  }
  // Hysteresis band (headroom < p95 <= target): hold the pool steady
  // so a p95 oscillating near the target cannot flap replicas.
  headroom_polls_ = 0;
}

void Autoscaler::repair_pool() {
  last_action_ = session_.now();
  ++repairs_;
  log_.warn(strutil::cat("group '", replica_.name,
                         "' has no live replicas; resubmitting ",
                         config_.min_replicas));
  std::vector<core::ServiceDescription> descs(config_.min_replicas,
                                              replica_);
  std::vector<std::string> uids =
      session_.services().submit_all(pilot_, std::move(descs));
  replicas_.insert(replicas_.end(), uids.begin(), uids.end());
  decisions_.push_back(
      Decision{session_.now(), true, 0, active_replicas()});
  session_.counters().add("autoscale.repairs");
  if (session_.tracer().enabled()) {
    session_.tracer().instant(
        "repair", "autoscale", replica_.name, session_.now(), 0,
        {{"replicas", std::to_string(active_replicas())}});
  }
}

void Autoscaler::scale_up(std::size_t outstanding, double p95) {
  last_action_ = session_.now();
  ++scale_ups_;
  const std::string uid =
      session_.services().submit(pilot_, replica_);
  replicas_.push_back(uid);
  decisions_.push_back(Decision{session_.now(), true, outstanding,
                                active_replicas(), p95});
  session_.counters().add("autoscale.ups");
  if (session_.tracer().enabled()) {
    session_.tracer().instant(
        "scale-up", "autoscale", replica_.name, session_.now(), 0,
        {{"outstanding", std::to_string(outstanding)},
         {"replicas", std::to_string(active_replicas())},
         {"p95", strutil::format_fixed(p95, 6)}});
  }
  log_.info(strutil::cat("scale up -> ", active_replicas(),
                         " replicas (backlog ", outstanding, ")"));
}

std::string Autoscaler::scale_down_victim() const {
  // Deterministic victim: the least-loaded running replica drains
  // fastest under skewed load (the balancer migrates its few in-flight
  // requests); ties pick the newest, so an evenly idle pool keeps its
  // oldest replicas and endpoint churn stays minimal.
  std::string victim;
  std::size_t victim_load = 0;
  for (const auto& uid : replicas_) {  // submission order: <= favors newest
    if (!session_.services().exists(uid)) continue;
    if (session_.services().get(uid).state() !=
        core::ServiceState::running) {
      continue;
    }
    const std::size_t load = session_.services().outstanding_of(uid);
    if (victim.empty() || load <= victim_load) {
      victim = uid;
      victim_load = load;
    }
  }
  return victim;
}

void Autoscaler::scale_down(std::size_t outstanding, double p95) {
  const std::string victim = scale_down_victim();
  if (victim.empty()) return;
  last_action_ = session_.now();
  ++scale_downs_;
  session_.services().stop(victim);
  // The victim is DRAINING now, so running_replicas() is the pool
  // size traffic can still reach.
  decisions_.push_back(Decision{session_.now(), false, outstanding,
                                running_replicas(), p95});
  session_.counters().add("autoscale.downs");
  if (session_.tracer().enabled()) {
    session_.tracer().instant(
        "scale-down", "autoscale", replica_.name, session_.now(), 0,
        {{"outstanding", std::to_string(outstanding)},
         {"replicas", std::to_string(running_replicas())},
         {"p95", strutil::format_fixed(p95, 6)}});
  }
  log_.info(strutil::cat("scale down -> ", active_replicas(),
                         " replicas (backlog ", outstanding, ")"));
}

json::Value Autoscaler::stats() const {
  json::Value out = json::Value::object();
  out.set("group", replica_.name);
  out.set("min_replicas", config_.min_replicas);
  out.set("max_replicas", config_.max_replicas);
  out.set("active", active_replicas());
  out.set("running", running_replicas());
  out.set("scale_ups", scale_ups_);
  out.set("scale_downs", scale_downs_);
  out.set("repairs", repairs_);
  if (config_.target_p95 > 0.0) {
    out.set("target_p95", config_.target_p95);
    out.set("window_p95", window_p95());
  }
  return out;
}

}  // namespace ripple::ml
