#include "ripple/sim/resource.hpp"

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::sim {

SlotPool::SlotPool(EventLoop& loop, std::string name, std::size_t capacity)
    : loop_(loop), name_(std::move(name)), capacity_(capacity) {
  ensure(capacity_ > 0, Errc::invalid_argument,
         strutil::cat("slot pool '", name_, "' needs capacity > 0"));
  last_change_ = loop_.now();
}

void SlotPool::account_utilization() {
  const SimTime now = loop_.now();
  busy_integral_ += static_cast<double>(in_use_) * (now - last_change_);
  last_change_ = now;
}

void SlotPool::acquire(std::size_t slots, GrantCallback callback) {
  ensure(slots > 0, Errc::invalid_argument, "acquire: zero slots");
  ensure(static_cast<bool>(callback), Errc::invalid_argument,
         "acquire: empty callback");
  ensure(slots <= capacity_, Errc::capacity,
         strutil::cat("request of ", slots, " slots exceeds capacity ",
                      capacity_, " of pool '", name_, "'"));
  waiters_.push_back(Waiter{slots, loop_.now(), std::move(callback)});
  grant_waiters();
}

void SlotPool::release(Grant grant) {
  ensure(grant.valid(), Errc::invalid_argument, "release of an empty grant");
  ensure(grant.slots <= in_use_, Errc::invalid_state,
         strutil::cat("release of ", grant.slots,
                      " slots exceeds in-use count ", in_use_, " of pool '",
                      name_, "'"));
  account_utilization();
  in_use_ -= grant.slots;
  grant_waiters();
}

void SlotPool::grant_waiters() {
  // Strict FIFO: the head blocks smaller later requests (no overtaking),
  // matching the scheduler semantics RADICAL-Pilot uses per node.
  while (!waiters_.empty() &&
         waiters_.front().slots <= capacity_ - in_use_) {
    Waiter waiter = std::move(waiters_.front());
    waiters_.pop_front();
    account_utilization();
    in_use_ += waiter.slots;
    wait_times_.add(loop_.now() - waiter.enqueued_at);
    Grant grant{next_grant_id_++, waiter.slots};
    loop_.post([callback = std::move(waiter.callback), grant] {
      callback(grant);
    });
  }
}

double SlotPool::mean_utilization() const {
  const SimTime elapsed = loop_.now() - 0.0;
  if (elapsed <= 0.0) return 0.0;
  const double integral =
      busy_integral_ +
      static_cast<double>(in_use_) * (loop_.now() - last_change_);
  return integral / (elapsed * static_cast<double>(capacity_));
}

}  // namespace ripple::sim
