#pragma once

/// \file event_loop.hpp
/// The deterministic discrete-event engine that drives every Ripple run.
///
/// All runtime components (scheduler, executor, managers, services,
/// clients) are actors that post timestamped callbacks here. Events at
/// equal times fire in posting order (a monotonically increasing sequence
/// number breaks ties), which makes every simulation bit-reproducible.
///
/// post() — scheduling at the current time — bypasses the heap through a
/// FIFO now-queue: O(1) instead of O(log pending), which matters because
/// grant callbacks, pub/sub deliveries and reply dispatches are all
/// same-time posts and dominate small-point service latency. Ordering is
/// unchanged: the global (time, sequence) order decides between the
/// now-queue front and the heap top, so traces stay bit-identical to the
/// heap-only implementation.

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <queue>
#include <unordered_set>
#include <vector>

#include "ripple/sim/callback.hpp"

namespace ripple::sim {

/// Simulation time in seconds since the start of the run.
using SimTime = double;

/// A duration in seconds.
using Duration = double;

class EventLoop {
 public:
  /// Move-only with inline storage for typical closure sizes — no
  /// per-event heap allocation (see callback.hpp).
  using Callback = UniqueCallback;

  /// Identifies a scheduled event so it can be cancelled.
  struct TimerHandle {
    std::uint64_t id = 0;
    [[nodiscard]] bool valid() const noexcept { return id != 0; }
  };

  /// Current simulation time. Starts at 0.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `callback` at absolute time `when` (>= now).
  TimerHandle call_at(SimTime when, Callback callback);

  /// Schedules `callback` after `delay` seconds (>= 0).
  TimerHandle call_after(Duration delay, Callback callback);

  /// Schedules `callback` to run at the current time, after already
  /// pending same-time events ("post to the back of the now-queue").
  /// O(1) fast path: skips the heap entirely.
  TimerHandle post(Callback callback);

  /// Thread-safe completion hand-off: the only EventLoop entry point
  /// that may be called from another thread. Worker threads (payload
  /// computation on the ThreadPool) park their completion callbacks
  /// here; the loop drains them into the now-queue at the next step
  /// boundary, so the callback runs on the loop thread like any other
  /// event. Cross-thread arrival order is wall-clock, not seeded —
  /// deterministic control-plane code must keep using post(); this is
  /// for real-thread payload integration only. Not cancellable.
  void post_external(Callback callback);

  /// Cancels a pending event. Returns false if it already ran or was
  /// already cancelled.
  bool cancel(TimerHandle handle);

  /// Runs until the queue is empty. Returns events processed.
  std::size_t run();

  /// Runs while events exist with time <= `deadline`; afterwards, now()
  /// is max(now, deadline). Returns events processed.
  std::size_t run_until(SimTime deadline);

  /// Convenience: run_until(now() + duration).
  std::size_t run_for(Duration duration);

  /// Makes run()/run_until() return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  /// Clears the stop flag so the loop can be resumed.
  void reset_stop() noexcept { stopped_ = false; }

  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }

  [[nodiscard]] std::size_t pending() const noexcept {
    return heap_.size() + now_queue_.size() - cancelled_.size();
  }

  /// High-water mark of pending() over the run — the event-loop depth
  /// gauge sampled by metrics::Counters.
  [[nodiscard]] std::size_t peak_pending() const noexcept {
    return peak_pending_;
  }

  /// Cancelled events still occupying the heap (they drop out when
  /// popped). Bounded by pending cancellations; exposed for tests.
  [[nodiscard]] std::size_t cancelled_backlog() const noexcept {
    return cancelled_.size();
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t sequence;
    std::uint64_t id;
    Callback callback;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  /// Pops and runs the next live event; returns false when exhausted or
  /// when the next event lies beyond `deadline`.
  bool step(SimTime deadline);

  /// Moves externally posted callbacks into the now-queue (loop thread
  /// only; called at step boundaries).
  void drain_external();

  /// Drops cancelled events sitting at the front of either queue.
  void skim_cancelled();

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  /// Same-time events from post(): FIFO, so already in (time, sequence)
  /// order — now-queue entries never precede the heap's current time.
  std::deque<Event> now_queue_;
  /// Ids of events still queued (heap or now-queue). Keeps cancel() from
  /// recording ids of already-fired events in `cancelled_`, which would
  /// otherwise accumulate forever in long-running simulations.
  std::unordered_set<std::uint64_t> live_;
  std::unordered_set<std::uint64_t> cancelled_;
  /// Cross-thread hand-off inbox (post_external). The flag makes the
  /// common no-external case a single relaxed load per step.
  std::mutex external_mutex_;
  std::deque<Callback> external_;
  std::atomic<bool> has_external_{false};
  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t peak_pending_ = 0;
  bool stopped_ = false;
};

}  // namespace ripple::sim
