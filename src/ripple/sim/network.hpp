#pragma once

/// \file network.hpp
/// Host registry and sampled-latency / bandwidth network model.
///
/// Hosts belong to *zones* (one zone per platform: "frontier", "delta",
/// "r3"). A link model — latency distribution plus bandwidth — is defined
/// per zone pair; intra-zone, loopback and inter-zone (WAN) links differ.
/// The paper's calibration lives here: Delta inter-node latency
/// 0.063 ms +/- 0.014 ms, Delta<->R3 0.47 ms +/- 0.04 ms (section IV-C).

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>

#include "ripple/common/random.hpp"
#include "ripple/common/statistics.hpp"
#include "ripple/sim/event_loop.hpp"

namespace ripple::sim {

/// Opaque host identifier ("delta:node03", "r3:server").
using HostId = std::string;

/// Latency + bandwidth parameters of one link class.
struct LinkModel {
  common::Distribution latency;      ///< one-way latency, seconds
  double bandwidth_bytes_per_s = 0;  ///< 0 means "latency only"

  /// Transfer delay for `bytes` over this link with a given rng.
  [[nodiscard]] Duration sample_delay(common::Rng& rng,
                                      std::size_t bytes) const;
};

class Network {
 public:
  Network(EventLoop& loop, common::Rng rng);

  /// Declares a zone; idempotent.
  void add_zone(const std::string& zone);

  /// Registers `host` as a member of `zone` (zone auto-created).
  void register_host(const HostId& host, const std::string& zone);

  [[nodiscard]] bool has_host(const HostId& host) const;

  /// Zone of a registered host; throws not_found otherwise.
  [[nodiscard]] const std::string& zone_of(const HostId& host) const;

  /// Sets the symmetric link model between two zones (a == b allowed:
  /// that is the intra-zone inter-node link).
  void set_link(const std::string& zone_a, const std::string& zone_b,
                LinkModel link);

  /// Sets the same-host loopback model (default: 1 us constant).
  void set_loopback(LinkModel link) { loopback_ = link; }

  /// Sets the same-host model for hosts of one zone. HPC platforms use
  /// this to charge the local TCP/ZeroMQ stack cost even for node-local
  /// messaging (comparable to, slightly below, inter-node latency).
  void set_zone_loopback(const std::string& zone, LinkModel link) {
    zone_loopback_[zone] = link;
  }

  /// Bulk bandwidth of the zone-pair link model, bytes/s; 0 when the
  /// pair has no link or the link is latency-only. The data plane's
  /// TransferEngine reads shared-link rates from here, which makes the
  /// network's link models the single source of truth for bandwidth.
  [[nodiscard]] double link_bandwidth(const std::string& zone_a,
                                      const std::string& zone_b) const
      noexcept;

  /// Samples the delivery delay for a message of `bytes` from -> to.
  [[nodiscard]] Duration sample_delay(const HostId& from, const HostId& to,
                                      std::size_t bytes);

  /// Schedules `on_arrival` after the sampled delivery delay.
  void deliver(const HostId& from, const HostId& to, std::size_t bytes,
               EventLoop::Callback on_arrival);

  [[nodiscard]] std::uint64_t messages_delivered() const noexcept {
    return messages_;
  }
  [[nodiscard]] std::uint64_t bytes_delivered() const noexcept {
    return bytes_;
  }

  /// Observed one-way delays per zone pair ("delta->r3").
  [[nodiscard]] const std::map<std::string, common::Summary>& delay_stats()
      const noexcept {
    return delay_stats_;
  }

 private:
  [[nodiscard]] const LinkModel& link_between(const std::string& zone_a,
                                              const std::string& zone_b) const;

  EventLoop& loop_;
  common::Rng rng_;
  std::unordered_map<HostId, std::string> host_zone_;
  std::map<std::pair<std::string, std::string>, LinkModel> links_;
  LinkModel loopback_;
  std::unordered_map<std::string, LinkModel> zone_loopback_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::map<std::string, common::Summary> delay_stats_;
};

}  // namespace ripple::sim
