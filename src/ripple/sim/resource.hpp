#pragma once

/// \file resource.hpp
/// A capacity-limited resource with a FIFO grant queue.
///
/// SlotPool models anything with finite concurrent capacity: GPU slots on
/// a node, the single-threaded request slot of an Ollama-style service,
/// or a bandwidth-limited staging channel. Waiters are granted strictly
/// in FIFO order; the pool records wait times and a utilization integral
/// so benches can report queueing behaviour (paper Fig. 6, strong
/// scaling: "the service queues client requests").

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "ripple/common/statistics.hpp"
#include "ripple/sim/event_loop.hpp"

namespace ripple::sim {

class SlotPool {
 public:
  /// A held grant; release through SlotPool::release.
  struct Grant {
    std::uint64_t id = 0;
    std::size_t slots = 0;
    [[nodiscard]] bool valid() const noexcept { return id != 0; }
  };

  using GrantCallback = std::function<void(Grant)>;

  SlotPool(EventLoop& loop, std::string name, std::size_t capacity);

  /// Requests `slots` units; `callback` fires (via the event loop) as
  /// soon as they are available, preserving FIFO order among waiters.
  /// Throws Errc::capacity when `slots` exceeds total capacity.
  void acquire(std::size_t slots, GrantCallback callback);

  /// Returns a grant's slots to the pool and wakes eligible waiters.
  void release(Grant grant);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t in_use() const noexcept { return in_use_; }
  [[nodiscard]] std::size_t available() const noexcept {
    return capacity_ - in_use_;
  }
  [[nodiscard]] std::size_t queue_length() const noexcept {
    return waiters_.size();
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Wait-time distribution of all grants made so far (seconds).
  [[nodiscard]] const common::Summary& wait_times() const noexcept {
    return wait_times_;
  }

  /// Time-weighted mean utilization in [0, 1] since construction.
  [[nodiscard]] double mean_utilization() const;

 private:
  struct Waiter {
    std::size_t slots;
    SimTime enqueued_at;
    GrantCallback callback;
  };

  void grant_waiters();
  void account_utilization();

  EventLoop& loop_;
  std::string name_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::deque<Waiter> waiters_;
  std::uint64_t next_grant_id_ = 1;
  common::Summary wait_times_;

  // Utilization integral: sum of (busy slots x elapsed time).
  double busy_integral_ = 0.0;
  SimTime last_change_ = 0.0;
};

}  // namespace ripple::sim
