#include "ripple/sim/failure_injector.hpp"

#include <utility>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::sim {

const char* to_string(FailureKind kind) noexcept {
  switch (kind) {
    case FailureKind::node_crash: return "node_crash";
    case FailureKind::node_restore: return "node_restore";
    case FailureKind::pilot_preempt: return "pilot_preempt";
    case FailureKind::link_down: return "link_down";
    case FailureKind::link_up: return "link_up";
    case FailureKind::slow_node: return "slow_node";
    case FailureKind::node_normal: return "node_normal";
    case FailureKind::store_crash: return "store_crash";
    case FailureKind::store_restore: return "store_restore";
  }
  return "?";
}

std::optional<FailureKind> recovery_of(FailureKind kind) noexcept {
  switch (kind) {
    case FailureKind::node_crash: return FailureKind::node_restore;
    case FailureKind::link_down: return FailureKind::link_up;
    case FailureKind::slow_node: return FailureKind::node_normal;
    case FailureKind::store_crash: return FailureKind::store_restore;
    default: return std::nullopt;
  }
}

FailureInjector::FailureInjector(EventLoop& loop, common::Rng rng)
    : loop_(loop), rng_(std::move(rng)) {}

void FailureInjector::on(FailureKind kind, Handler handler) {
  handlers_[kind] = std::move(handler);
}

void FailureInjector::arm(FailureKind kind, std::vector<std::string> targets,
                          Schedule schedule) {
  ensure(!targets.empty(), Errc::invalid_argument,
         "failure stream needs targets");
  ensure(schedule.mean_interarrival > 0.0, Errc::invalid_argument,
         "failure stream needs a positive mean inter-arrival");
  auto& stream = streams_[kind];
  if (stream.next.valid()) loop_.cancel(stream.next);
  stream = Stream{};
  stream.schedule = schedule;
  stream.targets = std::move(targets);
  for (std::size_t i = 0; i < stream.targets.size(); ++i) {
    stream.up.insert(stream.up.end(), i);
  }
  // Per-kind fork: arming order and other components' draws do not
  // perturb this stream's samples.
  stream.rng = rng_.fork(to_string(kind));
  schedule_next(kind);
}

void FailureInjector::inject_at(SimTime when, FailureKind kind,
                                std::string target, double magnitude) {
  side_timers_.push_back(loop_.call_at(
      when, [this, kind, target = std::move(target), magnitude] {
        dispatch(kind, target, magnitude);
      }));
}

void FailureInjector::disarm() {
  for (auto& [kind, stream] : streams_) {
    if (stream.next.valid()) loop_.cancel(stream.next);
    stream.next = {};
  }
  for (const auto& handle : side_timers_) loop_.cancel(handle);
  side_timers_.clear();
}

void FailureInjector::schedule_next(FailureKind kind) {
  auto& stream = streams_.at(kind);
  stream.next = {};
  if (stream.up.empty()) return;
  if (stream.fired >= stream.schedule.max_events) return;
  const SimTime base = std::max(loop_.now(), stream.schedule.start);
  const SimTime when =
      base + stream.rng.exponential(stream.schedule.mean_interarrival);
  if (when > stream.schedule.horizon) return;
  stream.next = loop_.call_at(when, [this, kind] { fire(kind); });
}

void FailureInjector::fire(FailureKind kind) {
  auto& stream = streams_.at(kind);
  stream.next = {};
  if (!stream.up.empty()) {
    auto it = stream.up.begin();
    std::advance(it, stream.rng.uniform_int(
                         0, static_cast<std::int64_t>(stream.up.size()) - 1));
    const std::size_t index = *it;
    stream.up.erase(it);
    ++stream.fired;
    const double magnitude = stream.schedule.magnitude.sample(stream.rng);
    dispatch(kind, stream.targets[index], magnitude);
    const auto recovery = recovery_of(kind);
    if (recovery.has_value() && stream.schedule.mean_time_to_repair > 0.0) {
      const SimTime back =
          loop_.now() +
          stream.rng.exponential(stream.schedule.mean_time_to_repair);
      side_timers_.push_back(loop_.call_at(back, [this, kind, index] {
        auto& s = streams_.at(kind);
        s.up.insert(index);
        dispatch(*recovery_of(kind), s.targets[index], 0.0);
      }));
    }
  }
  schedule_next(kind);
}

void FailureInjector::dispatch(FailureKind kind, const std::string& target,
                               double magnitude) {
  FailureEvent event{loop_.now(), kind, target, magnitude};
  const std::string line =
      strutil::cat(strutil::format_fixed(event.time, 6), " ", to_string(kind),
                   " ", target, " ", strutil::format_fixed(magnitude, 3));
  log_.push_back(line);
  log_hash_ = common::fnv1a(log_hash_, line);
  ++injected_;
  const auto it = handlers_.find(kind);
  if (it != handlers_.end() && it->second) it->second(event);
}

}  // namespace ripple::sim
