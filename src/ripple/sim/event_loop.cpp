#include "ripple/sim/event_loop.hpp"

#include <limits>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::sim {

EventLoop::TimerHandle EventLoop::call_at(SimTime when, Callback callback) {
  ensure(static_cast<bool>(callback), Errc::invalid_argument,
         "call_at: empty callback");
  ensure(when >= now_, Errc::invalid_argument,
         strutil::cat("call_at: time ", when, " is in the past (now=", now_,
                      ")"));
  const std::uint64_t id = next_id_++;
  heap_.push(Event{when, next_sequence_++, id, std::move(callback)});
  live_.insert(id);
  return TimerHandle{id};
}

EventLoop::TimerHandle EventLoop::call_after(Duration delay,
                                             Callback callback) {
  ensure(delay >= 0.0, Errc::invalid_argument,
         strutil::cat("call_after: negative delay ", delay));
  return call_at(now_ + delay, std::move(callback));
}

bool EventLoop::cancel(TimerHandle handle) {
  if (!handle.valid()) return false;
  // Events stay in the heap; execution skips cancelled ids. Only ids
  // still in the heap may enter `cancelled_` — an id of an event that
  // already ran would never be popped and would leak.
  if (live_.count(handle.id) == 0) return false;
  return cancelled_.insert(handle.id).second;
}

bool EventLoop::step(SimTime deadline) {
  while (!heap_.empty()) {
    const Event& top = heap_.top();
    if (cancelled_.erase(top.id) > 0) {
      live_.erase(top.id);
      heap_.pop();
      continue;
    }
    if (top.time > deadline) return false;
    // Move the callback out before popping so re-entrant scheduling from
    // inside the callback sees a consistent heap.
    Event event = std::move(const_cast<Event&>(top));
    heap_.pop();
    live_.erase(event.id);
    now_ = event.time;
    ++processed_;
    event.callback();
    return true;
  }
  return false;
}

std::size_t EventLoop::run() {
  return run_until(std::numeric_limits<SimTime>::infinity());
}

std::size_t EventLoop::run_until(SimTime deadline) {
  std::size_t count = 0;
  while (!stopped_ && step(deadline)) ++count;
  if (deadline != std::numeric_limits<SimTime>::infinity() &&
      deadline > now_ && !stopped_) {
    now_ = deadline;
  }
  return count;
}

std::size_t EventLoop::run_for(Duration duration) {
  ensure(duration >= 0.0, Errc::invalid_argument,
         "run_for: negative duration");
  return run_until(now_ + duration);
}

}  // namespace ripple::sim
