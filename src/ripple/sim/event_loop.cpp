#include "ripple/sim/event_loop.hpp"

#include <algorithm>
#include <limits>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::sim {

EventLoop::TimerHandle EventLoop::call_at(SimTime when, Callback callback) {
  ensure(static_cast<bool>(callback), Errc::invalid_argument,
         "call_at: empty callback");
  ensure(when >= now_, Errc::invalid_argument,
         strutil::cat("call_at: time ", when, " is in the past (now=", now_,
                      ")"));
  const std::uint64_t id = next_id_++;
  heap_.push(Event{when, next_sequence_++, id, std::move(callback)});
  live_.insert(id);
  peak_pending_ = std::max(peak_pending_, pending());
  return TimerHandle{id};
}

EventLoop::TimerHandle EventLoop::call_after(Duration delay,
                                             Callback callback) {
  ensure(delay >= 0.0, Errc::invalid_argument,
         strutil::cat("call_after: negative delay ", delay));
  return call_at(now_ + delay, std::move(callback));
}

EventLoop::TimerHandle EventLoop::post(Callback callback) {
  ensure(static_cast<bool>(callback), Errc::invalid_argument,
         "post: empty callback");
  // Same-time events always run before any strictly later event, and the
  // now-queue is FIFO by construction, so an O(1) deque push preserves
  // the exact (time, sequence) order the heap would have produced.
  const std::uint64_t id = next_id_++;
  now_queue_.push_back(Event{now_, next_sequence_++, id, std::move(callback)});
  live_.insert(id);
  peak_pending_ = std::max(peak_pending_, pending());
  return TimerHandle{id};
}

void EventLoop::post_external(Callback callback) {
  ensure(static_cast<bool>(callback), Errc::invalid_argument,
         "post_external: empty callback");
  {
    std::lock_guard lock(external_mutex_);
    external_.push_back(std::move(callback));
  }
  has_external_.store(true, std::memory_order_release);
}

void EventLoop::drain_external() {
  if (!has_external_.load(std::memory_order_acquire)) return;
  std::deque<Callback> drained;
  {
    std::lock_guard lock(external_mutex_);
    drained.swap(external_);
    has_external_.store(false, std::memory_order_relaxed);
  }
  // Ids and sequences are assigned on the loop thread, in drain order,
  // so once an external callback is in, it behaves exactly like a
  // post()ed event.
  for (Callback& callback : drained) {
    post(std::move(callback));
  }
}

bool EventLoop::cancel(TimerHandle handle) {
  if (!handle.valid()) return false;
  // Events stay queued; execution skips cancelled ids. Only ids still
  // queued may enter `cancelled_` — an id of an event that already ran
  // would never be popped and would leak.
  if (live_.count(handle.id) == 0) return false;
  return cancelled_.insert(handle.id).second;
}

void EventLoop::skim_cancelled() {
  while (!now_queue_.empty() &&
         cancelled_.erase(now_queue_.front().id) > 0) {
    live_.erase(now_queue_.front().id);
    now_queue_.pop_front();
  }
  while (!heap_.empty() && cancelled_.erase(heap_.top().id) > 0) {
    live_.erase(heap_.top().id);
    heap_.pop();
  }
}

bool EventLoop::step(SimTime deadline) {
  drain_external();
  skim_cancelled();
  // The next live event is whichever of the now-queue front and the heap
  // top comes first in the global (time, sequence) order.
  const bool have_now = !now_queue_.empty();
  const bool have_heap = !heap_.empty();
  if (!have_now && !have_heap) return false;
  bool from_now = have_now;
  if (have_now && have_heap) {
    const Event& n = now_queue_.front();
    const Event& h = heap_.top();
    from_now =
        n.time < h.time || (n.time == h.time && n.sequence < h.sequence);
  }

  if (from_now) {
    if (now_queue_.front().time > deadline) return false;
    // Move the event out before popping so re-entrant posting from
    // inside the callback sees a consistent queue.
    Event event = std::move(now_queue_.front());
    now_queue_.pop_front();
    live_.erase(event.id);
    now_ = event.time;
    ++processed_;
    event.callback();
    return true;
  }

  if (heap_.top().time > deadline) return false;
  Event event = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  live_.erase(event.id);
  now_ = event.time;
  ++processed_;
  event.callback();
  return true;
}

std::size_t EventLoop::run() {
  return run_until(std::numeric_limits<SimTime>::infinity());
}

std::size_t EventLoop::run_until(SimTime deadline) {
  std::size_t count = 0;
  while (!stopped_ && step(deadline)) ++count;
  if (deadline != std::numeric_limits<SimTime>::infinity() &&
      deadline > now_ && !stopped_) {
    now_ = deadline;
  }
  return count;
}

std::size_t EventLoop::run_for(Duration duration) {
  ensure(duration >= 0.0, Errc::invalid_argument,
         "run_for: negative duration");
  return run_until(now_ + duration);
}

}  // namespace ripple::sim
