#pragma once

/// \file callback.hpp
/// The event-loop callback type.
///
/// Every scheduled event used to carry a `std::function<void()>`, whose
/// copyability forces a heap allocation for any capture larger than the
/// implementation's tiny inline buffer. With millions of grant
/// callbacks, pub/sub deliveries and reply dispatches per run, that
/// allocation was the remaining small-point cost of the post() fast
/// path (see bench/micro_runtime's callback suite for the measured
/// delta).
///
/// The actual small-buffer-optimized move-only implementation now lives
/// in common/unique_function.hpp, shared with the thread pool's work
/// queue; this alias keeps the event loop's vocabulary type.

#include "ripple/common/unique_function.hpp"

namespace ripple::sim {

using UniqueCallback = common::UniqueFunction;

}  // namespace ripple::sim
