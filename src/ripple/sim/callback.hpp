#pragma once

/// \file callback.hpp
/// Small-buffer-optimized, move-only callable for event-loop events.
///
/// Every scheduled event used to carry a `std::function<void()>`, whose
/// copyability forces a heap allocation for any capture larger than the
/// implementation's tiny inline buffer (typically 16-24 bytes — less
/// than `this` plus one uid string). With millions of grant callbacks,
/// pub/sub deliveries and reply dispatches per run, that allocation was
/// the remaining small-point cost of the post() fast path (see
/// bench/micro_runtime's callback suite for the measured delta).
///
/// UniqueCallback is move-only, so a capture only needs to be movable,
/// and it reserves enough inline storage for the common "component
/// pointer + a couple of uids" closure shape. Larger captures fall back
/// to the heap transparently.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ripple::sim {

class UniqueCallback {
 public:
  /// Inline capture budget. 64 bytes holds `this` plus two
  /// `std::string` uids (or one string and a couple of scalars), which
  /// covers the runtime's hot callbacks; bigger closures heap-allocate.
  static constexpr std::size_t inline_capacity = 64;

  UniqueCallback() noexcept = default;
  UniqueCallback(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueCallback(F&& f) {  // NOLINT(runtime/explicit)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= inline_capacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_))
          Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  UniqueCallback(UniqueCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  UniqueCallback& operator=(UniqueCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  UniqueCallback(const UniqueCallback&) = delete;
  UniqueCallback& operator=(const UniqueCallback&) = delete;

  ~UniqueCallback() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move the callable from `from` into `to` and destroy the source.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* storage) { (*std::launder(static_cast<Fn*>(storage)))(); },
      [](void* from, void* to) noexcept {
        Fn* source = std::launder(static_cast<Fn*>(from));
        ::new (to) Fn(std::move(*source));
        source->~Fn();
      },
      [](void* storage) noexcept {
        std::launder(static_cast<Fn*>(storage))->~Fn();
      }};

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* storage) {
        (**std::launder(static_cast<Fn**>(storage)))();
      },
      [](void* from, void* to) noexcept {
        ::new (to) Fn*(*std::launder(static_cast<Fn**>(from)));
      },
      [](void* storage) noexcept {
        delete *std::launder(static_cast<Fn**>(storage));
      }};

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[inline_capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace ripple::sim
