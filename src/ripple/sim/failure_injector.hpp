#pragma once

/// \file failure_injector.hpp
/// Seeded fault injection for the deterministic simulator.
///
/// Production platforms lose components mid-run — nodes crash, spot
/// pilots are reclaimed, links flap, disks die, and some nodes just run
/// slow. The injector turns each failure mode into a schedulable,
/// seeded event stream on the event loop: inter-arrival times are
/// exponential (the MTBF model of the RADICAL-Pilot leadership-class
/// characterization), targets are drawn uniformly from the healthy set,
/// and optional mean-time-to-repair streams bring targets back. Every
/// dispatched event lands in an ordered log with a rolling FNV-1a hash,
/// so failure scenarios obey the house rule: same seed, bit-identical
/// event order.
///
/// The injector is policy-free: it names targets and times, and the
/// session-level FailureCoordinator (core/) maps each event onto the
/// runtime (cluster node lifecycle, task re-placement, catalog repair,
/// link failover). Tests can bypass the stochastic streams entirely
/// with inject_at().

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ripple/common/hash.hpp"
#include "ripple/common/random.hpp"
#include "ripple/sim/event_loop.hpp"

namespace ripple::sim {

enum class FailureKind {
  node_crash,     ///< a compute node dies; its slots die with it
  node_restore,   ///< a crashed node rejoins with full capacity
  pilot_preempt,  ///< spot reclamation: the whole pilot disappears
  link_down,      ///< a network link drops; in-flight stripes die
  link_up,        ///< a downed link comes back
  slow_node,      ///< a node degrades to `magnitude`x slower execution
  node_normal,    ///< a degraded node recovers full speed
  store_crash,    ///< a catalog store fails; its replicas are lost
  store_restore,  ///< a failed store rejoins (empty)
};

[[nodiscard]] const char* to_string(FailureKind kind) noexcept;

/// The recovery event paired with a failure kind, if the mode has one.
[[nodiscard]] std::optional<FailureKind> recovery_of(
    FailureKind kind) noexcept;

/// One dispatched failure (or recovery) event.
struct FailureEvent {
  SimTime time = 0.0;
  FailureKind kind = FailureKind::node_crash;
  std::string target;      ///< node id, pilot uid, "src->dst" link, zone
  double magnitude = 0.0;  ///< mode-specific (slow_node: slowdown factor)
};

class FailureInjector {
 public:
  using Handler = std::function<void(const FailureEvent&)>;

  /// Parameters of one seeded failure stream.
  struct Schedule {
    /// Mean seconds between failures (exponential inter-arrival).
    double mean_interarrival = 0.0;

    /// Mean seconds until the paired recovery event; <= 0 means the
    /// failure is permanent (the target is never picked again).
    double mean_time_to_repair = 0.0;

    SimTime start = 0.0;
    SimTime horizon = std::numeric_limits<double>::infinity();
    std::size_t max_events = std::numeric_limits<std::size_t>::max();

    /// Sampled per event into FailureEvent::magnitude (e.g. the
    /// slowdown factor of a slow_node event).
    common::Distribution magnitude = common::Distribution::constant(0.0);
  };

  FailureInjector(EventLoop& loop, common::Rng rng);

  FailureInjector(const FailureInjector&) = delete;
  FailureInjector& operator=(const FailureInjector&) = delete;

  /// Registers the runtime reaction to one event kind (recovery kinds
  /// are registered separately). Events without a handler still log.
  void on(FailureKind kind, Handler handler);

  /// Arms a seeded stream: failures of `kind` hit `targets` with
  /// exponential inter-arrivals. Each kind carries one stream; a
  /// target currently down is never re-picked. Streams draw from
  /// per-kind forked RNGs, so arming order does not perturb samples.
  void arm(FailureKind kind, std::vector<std::string> targets,
           Schedule schedule);

  /// Schedules one explicit event — the deterministic path for tests
  /// and benches. No recovery is implied; inject the paired kind
  /// explicitly if wanted.
  void inject_at(SimTime when, FailureKind kind, std::string target,
                 double magnitude = 0.0);

  /// Cancels every pending stream and recovery timer.
  void disarm();

  /// Ordered "t kind target magnitude" lines — the determinism oracle.
  [[nodiscard]] const std::vector<std::string>& event_log() const noexcept {
    return log_;
  }
  [[nodiscard]] std::uint64_t event_log_hash() const noexcept {
    return log_hash_;
  }
  [[nodiscard]] std::size_t injected() const noexcept { return injected_; }

 private:
  struct Stream {
    Schedule schedule;
    std::vector<std::string> targets;
    std::set<std::size_t> up;  ///< indices currently healthy
    common::Rng rng;
    std::size_t fired = 0;
    EventLoop::TimerHandle next{};
  };

  void schedule_next(FailureKind kind);
  void fire(FailureKind kind);
  void dispatch(FailureKind kind, const std::string& target,
                double magnitude);

  EventLoop& loop_;
  common::Rng rng_;
  std::map<FailureKind, Stream> streams_;
  std::map<FailureKind, Handler> handlers_;
  std::vector<EventLoop::TimerHandle> side_timers_;
  std::vector<std::string> log_;
  std::uint64_t log_hash_ = common::kFnvOffsetBasis;
  std::size_t injected_ = 0;
};

}  // namespace ripple::sim
