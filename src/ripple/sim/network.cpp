#include "ripple/sim/network.hpp"

#include <algorithm>

#include "ripple/common/error.hpp"
#include "ripple/common/strutil.hpp"

namespace ripple::sim {

Duration LinkModel::sample_delay(common::Rng& rng, std::size_t bytes) const {
  Duration delay = latency.sample(rng);
  if (bandwidth_bytes_per_s > 0.0 && bytes > 0) {
    delay += static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }
  return delay;
}

Network::Network(EventLoop& loop, common::Rng rng)
    : loop_(loop), rng_(rng) {
  loopback_.latency = common::Distribution::constant(1e-6);
}

void Network::add_zone(const std::string& zone) {
  ensure(!zone.empty(), Errc::invalid_argument, "zone name must not be empty");
  // Zones materialize lazily through links and hosts; nothing to store.
  (void)zone;
}

void Network::register_host(const HostId& host, const std::string& zone) {
  ensure(!host.empty(), Errc::invalid_argument, "host id must not be empty");
  ensure(!zone.empty(), Errc::invalid_argument, "zone name must not be empty");
  host_zone_[host] = zone;
}

bool Network::has_host(const HostId& host) const {
  return host_zone_.count(host) != 0;
}

const std::string& Network::zone_of(const HostId& host) const {
  const auto it = host_zone_.find(host);
  ensure(it != host_zone_.end(), Errc::not_found,
         strutil::cat("unknown host '", host, "'"));
  return it->second;
}

void Network::set_link(const std::string& zone_a, const std::string& zone_b,
                       LinkModel link) {
  auto key = std::minmax(zone_a, zone_b);
  links_[{key.first, key.second}] = link;
}

const LinkModel& Network::link_between(const std::string& zone_a,
                                       const std::string& zone_b) const {
  auto key = std::minmax(zone_a, zone_b);
  const auto it = links_.find({key.first, key.second});
  ensure(it != links_.end(), Errc::not_found,
         strutil::cat("no link model between zones '", zone_a, "' and '",
                      zone_b, "'"));
  return it->second;
}

double Network::link_bandwidth(const std::string& zone_a,
                               const std::string& zone_b) const noexcept {
  const auto key = std::minmax(zone_a, zone_b);
  const auto it = links_.find({key.first, key.second});
  return it == links_.end() ? 0.0 : it->second.bandwidth_bytes_per_s;
}

Duration Network::sample_delay(const HostId& from, const HostId& to,
                               std::size_t bytes) {
  Duration delay = 0.0;
  std::string label;
  if (from == to) {
    const auto zone = host_zone_.find(from);
    const auto zone_model =
        zone != host_zone_.end() ? zone_loopback_.find(zone->second)
                                 : zone_loopback_.end();
    if (zone_model != zone_loopback_.end()) {
      delay = zone_model->second.sample_delay(rng_, bytes);
    } else {
      delay = loopback_.sample_delay(rng_, bytes);
    }
    label = "loopback";
  } else {
    const std::string& zone_from = zone_of(from);
    const std::string& zone_to = zone_of(to);
    delay = link_between(zone_from, zone_to).sample_delay(rng_, bytes);
    label = zone_from + "->" + zone_to;
  }
  delay_stats_[label].add(delay);
  return delay;
}

void Network::deliver(const HostId& from, const HostId& to, std::size_t bytes,
                      EventLoop::Callback on_arrival) {
  const Duration delay = sample_delay(from, to, bytes);
  ++messages_;
  bytes_ += bytes;
  loop_.call_after(delay, std::move(on_arrival));
}

}  // namespace ripple::sim
